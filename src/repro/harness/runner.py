"""Experiment runner: execute (workload x ISA) pairs and collect results.

One :class:`WorkloadRun` captures everything the paper's figures need for
one workload under one ISA: aggregate and per-dispatch statistics, the
static instruction footprint, the device data footprint, and functional
verification.  :meth:`repro.core.Session.suite` runs the full matrix
once (via :func:`execute_suite_request` here), caches it
in-process *and* persistently on disk (see :mod:`repro.harness.cache`),
and can fan the matrix out across worker processes (``jobs=N``, see
:mod:`repro.harness.parallel`) — the parallel path reduces back into the
exact ordering and statistics the serial path produces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.config import GpuConfig, paper_config
from ..common.errors import ReproError
from ..common.stats import StatSet, merge_all
from ..core.requests import (  # re-exported: canonical home is requests
    EXECUTION_MODES,
    ISAS,
    RunRequest,
    SuiteRequest,
)
from ..obs.trace import TraceBus, TraceConfig, TraceData
from ..runtime.process import GpuProcess
from ..timing.gpu import Gpu
from ..timing.replay import ExecTrace, TraceRecorder
from ..workloads import all_workloads, create
from .cache import (
    ResultCache,
    TraceStore,
    job_fingerprint,
    resolve_cache,
    resolve_trace_store,
    trace_fingerprint,
)
from .parallel import Job, JobEvent, ProgressFn, resolve_jobs, run_job_inline, run_jobs


@dataclass
class WorkloadRun:
    """Results of one workload under one ISA."""

    workload: str
    isa: str
    verified: bool
    total: StatSet
    per_dispatch: List[StatSet]
    #: kernel name of each dispatch, index-aligned with ``per_dispatch``
    dispatch_kernel_names: List[str]
    data_footprint_bytes: int
    instr_footprint_bytes: int
    static_instructions: int
    kernel_code_bytes: Dict[str, int]
    wall_seconds: float
    #: set when the run failed (worker raised, timed out, or crashed);
    #: a failed run has empty statistics and ``verified=False``.
    error: Optional[str] = None
    #: cycle-level event trace; only present when the run was requested
    #: with a :class:`repro.obs.TraceConfig`.
    trace: Optional[TraceData] = None
    #: how this run's instruction stream was obtained — "execute",
    #: "capture" (executed while recording a trace), or "replay".
    execution: str = "execute"

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def cycles(self) -> int:
        return self.total.cycles

    @property
    def dynamic_instructions(self) -> int:
        return self.total.dynamic_instructions

    def stat(self, name: str) -> float:
        """Value of one named metric from the aggregate statistics.

        A metric the registry knows but this run never incremented (e.g.
        ``ib_flushes`` on a flush-free workload) reads as 0.0; a name the
        registry does *not* know raises ``KeyError`` with close-match
        suggestions, instead of silently returning 0.0 for a typo.
        """
        snapshot = self.total.snapshot()
        if name in snapshot:
            return float(snapshot[name])
        from ..obs.metrics import METRICS

        if METRICS.find(name) is not None:
            return 0.0
        suggestions = METRICS.suggest(name)
        hint = f"; did you mean {', '.join(suggestions)}?" if suggestions else ""
        raise KeyError(f"unknown metric {name!r}{hint}")

    def per_kernel_totals(self) -> "Dict[str, StatSet]":
        """Per-dispatch statistics aggregated by kernel name (the paper's
        per-kernel view of multi-kernel workloads like LULESH)."""
        out: Dict[str, StatSet] = {}
        for name, stats in zip(self.dispatch_kernel_names, self.per_dispatch):
            out.setdefault(name, StatSet()).merge(stats)
        return out

    def to_dict(self) -> "Dict[str, object]":
        """A JSON-friendly summary of this run."""
        return {
            "workload": self.workload,
            "isa": self.isa,
            "verified": self.verified,
            "stats": dict(self.total.snapshot()),
            "data_footprint_bytes": self.data_footprint_bytes,
            "instr_footprint_bytes": self.instr_footprint_bytes,
            "static_instructions": self.static_instructions,
            "kernel_code_bytes": dict(self.kernel_code_bytes),
            "dispatches": len(self.per_dispatch),
            "wall_seconds": round(self.wall_seconds, 3),
            "error": self.error,
            **({"execution": self.execution} if self.execution != "execute" else {}),
        }

    def to_payload(self) -> "Dict[str, object]":
        """A *lossless* JSON encoding (inverse of :meth:`from_payload`).

        Unlike :meth:`to_dict` (a flattened display summary), the payload
        round-trips every per-dispatch StatSet exactly; it is the format
        the on-disk result cache stores and worker processes return.
        """
        payload: "Dict[str, object]" = {
            "workload": self.workload,
            "isa": self.isa,
            "verified": self.verified,
            "total": self.total.to_payload(),
            "per_dispatch": [s.to_payload() for s in self.per_dispatch],
            "dispatch_kernel_names": list(self.dispatch_kernel_names),
            "data_footprint_bytes": self.data_footprint_bytes,
            "instr_footprint_bytes": self.instr_footprint_bytes,
            "static_instructions": self.static_instructions,
            "kernel_code_bytes": dict(self.kernel_code_bytes),
            "wall_seconds": self.wall_seconds,
            "error": self.error,
        }
        # Untraced payloads must stay byte-identical to the pre-trace
        # format (the golden-stats files and disk cache depend on it);
        # same rule for plain executed runs and the execution key.
        if self.trace is not None:
            payload["trace"] = self.trace.to_payload()
        if self.execution != "execute":
            payload["execution"] = self.execution
        return payload

    @classmethod
    def from_payload(cls, payload: "Dict[str, object]") -> "WorkloadRun":
        return cls(
            workload=str(payload["workload"]),
            isa=str(payload["isa"]),
            verified=bool(payload["verified"]),
            total=StatSet.from_payload(payload["total"]),  # type: ignore[arg-type]
            per_dispatch=[
                StatSet.from_payload(p)  # type: ignore[arg-type]
                for p in payload["per_dispatch"]  # type: ignore[union-attr]
            ],
            dispatch_kernel_names=[str(n) for n in payload["dispatch_kernel_names"]],  # type: ignore[union-attr]
            data_footprint_bytes=int(payload["data_footprint_bytes"]),  # type: ignore[arg-type]
            instr_footprint_bytes=int(payload["instr_footprint_bytes"]),  # type: ignore[arg-type]
            static_instructions=int(payload["static_instructions"]),  # type: ignore[arg-type]
            kernel_code_bytes={
                str(k): int(v)
                for k, v in payload["kernel_code_bytes"].items()  # type: ignore[union-attr]
            },
            wall_seconds=float(payload["wall_seconds"]),  # type: ignore[arg-type]
            error=payload.get("error"),  # type: ignore[arg-type]
            trace=(
                TraceData.from_payload(payload["trace"])  # type: ignore[arg-type]
                if payload.get("trace") is not None
                else None
            ),
            execution=str(payload.get("execution", "execute")),
        )


@dataclass
class SuiteResults:
    """The full (workload x ISA) result matrix."""

    scale: float
    runs: Dict[Tuple[str, str], WorkloadRun] = field(default_factory=dict)

    def get(self, workload: str, isa: str) -> WorkloadRun:
        return self.runs[(workload, isa)]

    def pair(self, workload: str) -> Tuple[WorkloadRun, WorkloadRun]:
        """(hsail, gcn3) runs for one workload."""
        return self.get(workload, "hsail"), self.get(workload, "gcn3")

    @property
    def workloads(self) -> List[str]:
        return sorted({w for (w, _isa) in self.runs})

    def all_verified(self) -> bool:
        return all(r.verified for r in self.runs.values())

    def failures(self) -> "List[Tuple[str, str, str]]":
        """(workload, isa, error) for every run that failed outright."""
        return [
            (w, isa, run.error)
            for (w, isa), run in sorted(self.runs.items())
            if run.error
        ]

    def to_json(self, indent: int = 2) -> str:
        """Serialize the whole matrix (for downstream analysis tools)."""
        import json

        payload = {
            "scale": self.scale,
            "runs": [run.to_dict() for _key, run in sorted(self.runs.items())],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def run_workload(
    name: str,
    isa: str,
    scale: float = 1.0,
    config: Optional[GpuConfig] = None,
    seed: int = 7,
    trace: Optional[TraceConfig] = None,
    execution: str = "execute",
    trace_store: Optional[TraceStore] = None,
) -> WorkloadRun:
    """Simulate one workload under one ISA and collect all statistics.

    With ``trace`` set, a :class:`~repro.obs.TraceBus` rides along with
    the GPU and the returned run carries the recorded
    :class:`~repro.obs.TraceData`.

    ``execution`` selects one of :data:`EXECUTION_MODES`.  ``capture``
    executes normally while recording the dynamic instruction stream into
    ``trace_store``; ``replay`` drives the timing model from the stored
    stream instead of executing semantics — statistically bit-identical
    and considerably faster, because functional execution, register
    uniqueness probes, and result verification are all skipped (the
    verification verdict and footprint metadata travel inside the trace).
    ``auto`` replays when a trace exists and captures otherwise.
    """
    if execution not in EXECUTION_MODES:
        raise ReproError(
            f"unknown execution mode {execution!r}; expected one of {EXECUTION_MODES}"
        )
    config = config or paper_config()

    mode = execution
    exec_trace: Optional[ExecTrace] = None
    fingerprint: Optional[str] = None
    if mode != "execute" and trace_store is not None:
        fingerprint = trace_fingerprint(config, name, isa, scale, seed)
    if mode in ("auto", "replay"):
        if fingerprint is not None:
            exec_trace = trace_store.get(fingerprint)  # type: ignore[union-attr]
        if exec_trace is not None:
            mode = "replay"
        elif mode == "replay":
            raise ReproError(
                f"no captured trace for {name}/{isa} scale={scale:g} seed={seed} "
                f"(functional fingerprint {config.functional_fingerprint()}); "
                "run with execution='capture' or 'auto' first"
            )
        else:
            mode = "capture" if trace_store is not None else "execute"

    bus = TraceBus(trace) if trace is not None else None

    if mode == "replay":
        process = _replay_process(name, isa, scale, seed)
        start = time.time()
        gpu = Gpu(config, process, trace=bus, replay=exec_trace)
        per_dispatch = gpu.run_all()
        wall = time.time() - start
        meta = exec_trace.meta  # type: ignore[union-attr]
        kernel_bytes = {str(k): int(v)
                        for k, v in meta["kernel_code_bytes"].items()}
        return WorkloadRun(
            workload=name,
            isa=isa,
            verified=bool(meta["verified"]),
            total=merge_all(per_dispatch),
            per_dispatch=per_dispatch,
            dispatch_kernel_names=[d.kernel.name for d in process.dispatches],
            data_footprint_bytes=int(meta["data_footprint_bytes"]),
            instr_footprint_bytes=sum(kernel_bytes.values()),
            static_instructions=int(meta["static_instructions"]),
            kernel_code_bytes=kernel_bytes,
            wall_seconds=wall,
            trace=bus.data() if bus is not None else None,
            execution="replay",
        )

    recorder = TraceRecorder() if mode == "capture" else None
    workload = create(name, scale=scale, seed=seed)
    process = GpuProcess(isa, memory_capacity=1 << 25)
    start = time.time()
    workload.stage(process, isa)
    gpu = Gpu(config, process, trace=bus, recorder=recorder)
    per_dispatch = gpu.run_all()
    verified = workload.verify(process)
    wall = time.time() - start

    total = merge_all(per_dispatch)
    kernel_bytes = {}
    static_instrs = 0
    for kname, dual in workload.kernels().items():
        kernel = dual.for_isa(isa)
        kernel_bytes[kname] = kernel.code_bytes
        static_instrs += kernel.static_instructions
    data_footprint = process.data_footprint_bytes
    if recorder is not None:
        captured = recorder.finish({
            "workload": name,
            "isa": isa,
            "scale": scale,
            "seed": seed,
            "functional_fingerprint": config.functional_fingerprint(),
            "verified": verified,
            "data_footprint_bytes": data_footprint,
            "static_instructions": static_instrs,
            "kernel_code_bytes": dict(kernel_bytes),
        })
        if trace_store is not None and fingerprint is not None:
            trace_store.put(fingerprint, captured)
    return WorkloadRun(
        workload=name,
        isa=isa,
        verified=verified,
        total=total,
        per_dispatch=per_dispatch,
        dispatch_kernel_names=[d.kernel.name for d in process.dispatches],
        data_footprint_bytes=data_footprint,
        instr_footprint_bytes=sum(kernel_bytes.values()),
        static_instructions=static_instrs,
        kernel_code_bytes=kernel_bytes,
        wall_seconds=wall,
        trace=bus.data() if bus is not None else None,
        execution=mode,
    )


#: Staged processes reused across replay runs, keyed by
#: (workload, isa, scale, seed).  Replay never writes simulated memory
#: (there is no functional execution), so the expensive part of a cell —
#: input generation, code loading, dispatch staging — can be paid once
#: per worker process and re-armed for every timing config replayed
#: after it.  The backing numpy buffer is lazily committed, so an entry
#: costs roughly its staged working set, not its address-space capacity.
_REPLAY_STAGING: Dict[Tuple[str, str, float, int], GpuProcess] = {}


def _replay_process(name: str, isa: str, scale: float, seed: int) -> GpuProcess:
    key = (name, isa, scale, seed)
    process = _REPLAY_STAGING.get(key)
    if process is not None and _rearm(process):
        return process
    workload = create(name, scale=scale, seed=seed)
    process = GpuProcess(isa, memory_capacity=1 << 25)
    workload.stage(process, isa)
    _REPLAY_STAGING[key] = process
    return process


def _rearm(process: GpuProcess) -> bool:
    """Reset a consumed process's queue and signals for another replay."""
    queue = process.queue
    if queue.write_index > queue.capacity:
        # The packet ring wrapped during staging; earlier packets were
        # overwritten and cannot be re-consumed.  Stage fresh instead.
        return False
    queue.read_index = 0
    for dispatch in process.dispatches:
        dispatch.signal.set(1)
    return True


#: In-process memo of full suite results.  Keyed by the config
#: *fingerprint* as well as (scale, seed, names): two different configs
#: with the same scale/seed/workloads must never share an entry.
_SUITE_CACHE: Dict[Tuple[str, float, int, Tuple[str, ...]], SuiteResults] = {}


def clear_suite_cache() -> None:
    """Drop the in-process memos — suite results, staged replay
    processes, parsed traces, and compiled kernels (test isolation
    helper)."""
    from ..workloads.base import clear_kernel_memo
    from .cache import clear_trace_memo

    _SUITE_CACHE.clear()
    _REPLAY_STAGING.clear()
    clear_trace_memo()
    clear_kernel_memo()


def execute_run_request(
    request: RunRequest,
    trace_store: Optional[TraceStore] = None,
) -> WorkloadRun:
    """Execute one :class:`~repro.core.requests.RunRequest` — THE entry
    point for single cells: ``Session.run``, the CLI, pool workers, and
    the ``repro serve`` scheduler all land here, so the engine fold,
    trace-store resolution, and execution-mode handling can never drift
    between surfaces.

    ``trace_store`` lets a resident caller (the daemon) pass one shared
    store whose hit/miss counters accumulate across requests; by default
    the store is resolved from the request's ``trace_dir``.
    """
    if trace_store is None and request.execution != "execute":
        trace_store = resolve_trace_store(request.trace_dir)
    return run_workload(
        request.workload,
        request.isa,
        scale=request.scale,
        config=request.resolved_config(),
        seed=request.seed,
        trace=request.trace,
        execution=request.execution,
        trace_store=trace_store if request.execution != "execute" else None,
    )


def execute_suite_request(
    request: SuiteRequest,
    progress: Optional[ProgressFn] = None,
) -> SuiteResults:
    """Execute one :class:`~repro.core.requests.SuiteRequest`: every
    workload under both ISAs.

    Results are memoized in-process and persisted in the on-disk result
    cache, so a warm rerun (same config/scale/seed/source tree) costs
    only JSON deserialization.  ``jobs`` > 1 fans cache misses out over a
    process pool; the reduce step is deterministic, so the result matrix
    is stat-identical to the serial path.

    ``progress`` is execution-side (a live callback cannot ride the
    wire): one :class:`JobEvent` per cell, cache hit or simulated.

    Traced suites bypass both the in-process memo and the disk cache in
    both directions: a cached result carries no events, and traced
    results must not poison the cache for untraced callers.
    """
    config = request.resolved_config()
    scale, seed = request.scale, request.seed
    names: Tuple[str, ...] = tuple(
        request.workloads if request.workloads is not None
        else [w.name for w in all_workloads()]
    )
    use_cache = request.use_cache
    use_disk_cache = request.use_disk_cache
    mem_key = (config.fingerprint(), scale, seed, names, request.execution)
    if request.trace is not None:
        use_cache = False
        use_disk_cache = False
    if use_cache and mem_key in _SUITE_CACHE:
        return _SUITE_CACHE[mem_key]

    # use_cache=False must mean "really re-simulate" unless the caller
    # explicitly re-enables the disk layer.
    disk: Optional[ResultCache] = resolve_cache(
        use_disk_cache if use_cache or use_disk_cache is not None else False,
        request.cache_dir,
    )

    cells = [
        Job.build(name, isa, scale, seed, config, trace=request.trace,
                  execution=request.execution, trace_dir=request.trace_dir)
        for name in names for isa in ISAS
    ]
    total = len(cells)
    runs: Dict[Tuple[str, str], WorkloadRun] = {}
    misses: List[Job] = []
    for cell in cells:
        cached = disk.get(_cell_fingerprint(cell)) if disk is not None else None
        if cached is not None:
            runs[cell.key] = cached
        else:
            misses.append(cell)

    # Report hits first (they resolve instantly), then simulate misses.
    index = 0
    if progress is not None:
        for cell in cells:
            if cell.key in runs:
                index += 1
                progress(JobEvent(
                    workload=cell.workload, isa=cell.isa, status="hit",
                    wall_seconds=runs[cell.key].wall_seconds,
                    index=index, total=total,
                ))

    if misses:
        if resolve_jobs(request.jobs) > 1 and len(misses) > 1:
            executed = run_jobs(
                misses,
                max_workers=resolve_jobs(request.jobs),
                timeout=request.job_timeout,
                progress=progress,
                progress_offset=index,
                progress_total=total,
            )
            runs.update(executed)
        else:
            for cell in misses:
                run = run_job_inline(cell)
                runs[cell.key] = run
                index += 1
                if progress is not None:
                    progress(JobEvent(
                        workload=cell.workload, isa=cell.isa,
                        status="failed" if run.error else "ok",
                        wall_seconds=run.wall_seconds,
                        index=index, total=total,
                    ))
        if disk is not None:
            for cell in misses:
                run = runs[cell.key]
                if run.error is None:
                    disk.put(_cell_fingerprint(cell), run,
                             config_fingerprint=cell.config.fingerprint())

    # Deterministic reduce: insertion order matches the serial loop
    # exactly, whatever order the pool completed in.
    results = SuiteResults(scale=scale)
    for name in names:
        for isa in ISAS:
            results.runs[(name, isa)] = runs[(name, isa)]
    if use_cache:
        _SUITE_CACHE[mem_key] = results
    return results


def _cell_fingerprint(cell: Job) -> str:
    return job_fingerprint(cell.config, cell.workload, cell.isa, cell.scale, cell.seed)
