"""Experiment runner: execute (workload x ISA) pairs and collect results.

One :class:`WorkloadRun` captures everything the paper's figures need for
one workload under one ISA: aggregate and per-dispatch statistics, the
static instruction footprint, the device data footprint, and functional
verification.  :func:`run_suite` runs the full matrix once and caches it
in-process so every benchmark can share the same simulation outputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import GpuConfig, paper_config
from ..common.stats import StatSet, merge_all
from ..runtime.process import GpuProcess
from ..timing.gpu import Gpu
from ..workloads import all_workloads, create

ISAS = ("hsail", "gcn3")


@dataclass
class WorkloadRun:
    """Results of one workload under one ISA."""

    workload: str
    isa: str
    verified: bool
    total: StatSet
    per_dispatch: List[StatSet]
    #: kernel name of each dispatch, index-aligned with ``per_dispatch``
    dispatch_kernel_names: List[str]
    data_footprint_bytes: int
    instr_footprint_bytes: int
    static_instructions: int
    kernel_code_bytes: Dict[str, int]
    wall_seconds: float

    @property
    def cycles(self) -> int:
        return self.total.cycles

    @property
    def dynamic_instructions(self) -> int:
        return self.total.dynamic_instructions

    def stat(self, name: str) -> float:
        return float(self.total.snapshot().get(name, 0.0))

    def per_kernel_totals(self) -> "Dict[str, StatSet]":
        """Per-dispatch statistics aggregated by kernel name (the paper's
        per-kernel view of multi-kernel workloads like LULESH)."""
        out: Dict[str, StatSet] = {}
        for name, stats in zip(self.dispatch_kernel_names, self.per_dispatch):
            out.setdefault(name, StatSet()).merge(stats)
        return out

    def to_dict(self) -> "Dict[str, object]":
        """A JSON-friendly summary of this run."""
        return {
            "workload": self.workload,
            "isa": self.isa,
            "verified": self.verified,
            "stats": dict(self.total.snapshot()),
            "data_footprint_bytes": self.data_footprint_bytes,
            "instr_footprint_bytes": self.instr_footprint_bytes,
            "static_instructions": self.static_instructions,
            "kernel_code_bytes": dict(self.kernel_code_bytes),
            "dispatches": len(self.per_dispatch),
            "wall_seconds": round(self.wall_seconds, 3),
        }


@dataclass
class SuiteResults:
    """The full (workload x ISA) result matrix."""

    scale: float
    runs: Dict[Tuple[str, str], WorkloadRun] = field(default_factory=dict)

    def get(self, workload: str, isa: str) -> WorkloadRun:
        return self.runs[(workload, isa)]

    def pair(self, workload: str) -> Tuple[WorkloadRun, WorkloadRun]:
        """(hsail, gcn3) runs for one workload."""
        return self.get(workload, "hsail"), self.get(workload, "gcn3")

    @property
    def workloads(self) -> List[str]:
        return sorted({w for (w, _isa) in self.runs})

    def all_verified(self) -> bool:
        return all(r.verified for r in self.runs.values())

    def to_json(self, indent: int = 2) -> str:
        """Serialize the whole matrix (for downstream analysis tools)."""
        import json

        payload = {
            "scale": self.scale,
            "runs": [run.to_dict() for _key, run in sorted(self.runs.items())],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)


def run_workload(
    name: str,
    isa: str,
    scale: float = 1.0,
    config: Optional[GpuConfig] = None,
    seed: int = 7,
) -> WorkloadRun:
    """Simulate one workload under one ISA and collect all statistics."""
    config = config or paper_config()
    workload = create(name, scale=scale, seed=seed)
    process = GpuProcess(isa, memory_capacity=1 << 25)
    start = time.time()
    workload.stage(process, isa)
    gpu = Gpu(config, process)
    per_dispatch = gpu.run_all()
    verified = workload.verify(process)
    wall = time.time() - start

    total = merge_all(per_dispatch)
    kernel_bytes = {}
    static_instrs = 0
    for kname, dual in workload.kernels().items():
        kernel = dual.for_isa(isa)
        kernel_bytes[kname] = kernel.code_bytes
        static_instrs += kernel.static_instructions
    return WorkloadRun(
        workload=name,
        isa=isa,
        verified=verified,
        total=total,
        per_dispatch=per_dispatch,
        dispatch_kernel_names=[d.kernel.name for d in process.dispatches],
        data_footprint_bytes=process.data_footprint_bytes,
        instr_footprint_bytes=sum(kernel_bytes.values()),
        static_instructions=static_instrs,
        kernel_code_bytes=kernel_bytes,
        wall_seconds=wall,
    )


_SUITE_CACHE: Dict[Tuple[float, int, Tuple[str, ...]], SuiteResults] = {}


def run_suite(
    scale: float = 1.0,
    config: Optional[GpuConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    seed: int = 7,
    use_cache: bool = True,
) -> SuiteResults:
    """Run every workload under both ISAs (cached per process)."""
    config = config or paper_config()
    names: Tuple[str, ...] = tuple(
        workloads if workloads is not None else [w.name for w in all_workloads()]
    )
    key = (scale, seed, names)
    if use_cache and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]
    results = SuiteResults(scale=scale)
    for name in names:
        for isa in ISAS:
            results.runs[(name, isa)] = run_workload(
                name, isa, scale=scale, config=config, seed=seed
            )
    if use_cache:
        _SUITE_CACHE[key] = results
    return results
