"""Persistent on-disk cache for simulation results.

Every (workload, ISA, scale, seed, config) job is identified by a content
fingerprint that also folds in a hash of the simulator's own source tree,
so results survive across processes and pytest sessions but are invalidated
automatically the moment any simulator code or configuration parameter
changes.  Entries are one JSON file each under the cache directory
(``.repro_cache/`` by default); a truncated or otherwise corrupt entry is
treated as a miss and silently rewritten.

Knobs
-----

``REPRO_CACHE_DIR``
    Override the cache directory (same as ``Session.suite(cache_dir=...)`` or
    the ``--cache-dir`` CLI flag).
``REPRO_NO_CACHE``
    Any non-empty value disables reads *and* writes (same as the
    ``--no-cache`` CLI flag).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from ..common.config import GpuConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .runner import WorkloadRun

#: Bump when the serialized WorkloadRun payload shape changes; older
#: entries then read as misses instead of deserializing garbage.
CACHE_FORMAT_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"

_SRC_ROOT = Path(__file__).resolve().parent.parent


@lru_cache(maxsize=1)
def source_tree_stamp() -> str:
    """A content hash over every ``.py`` file of the simulator itself.

    Editing any simulator source (timing model, finalizer, workloads, ...)
    changes the stamp and therefore every cache key, guaranteeing stale
    results are never served after a code change.  Computed once per
    process; ~150 small files hash in a few milliseconds.
    """
    digest = hashlib.sha256()
    for path in sorted(_SRC_ROOT.rglob("*.py")):
        digest.update(str(path.relative_to(_SRC_ROOT)).encode("utf-8"))
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def job_fingerprint(
    config: GpuConfig,
    workload: str,
    isa: str,
    scale: float,
    seed: int,
) -> str:
    """The cache key for one simulation job (hex digest)."""
    canonical = json.dumps(
        {
            "config": config.fingerprint(),
            "workload": workload,
            "isa": isa,
            "scale": scale,
            "seed": seed,
            "source": source_tree_stamp(),
            "format": CACHE_FORMAT_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def trace_fingerprint(
    config: GpuConfig,
    workload: str,
    isa: str,
    scale: float,
    seed: int,
) -> str:
    """The trace-store key for one workload's dynamic instruction stream.

    Unlike :func:`job_fingerprint` this folds in only the *functional*
    half of the configuration: every timing-only config (cache geometry,
    VRF banks, latencies, CU count) produces the same stream and therefore
    shares one captured trace — which is exactly what lets a timing sweep
    capture once and replay everywhere.
    """
    from ..timing.replay import TRACE_FORMAT_VERSION

    canonical = json.dumps(
        {
            "functional": config.functional_fingerprint(),
            "workload": workload,
            "isa": isa,
            "scale": scale,
            "seed": seed,
            "source": source_tree_stamp(),
            "format": TRACE_FORMAT_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cache_disabled_by_env() -> bool:
    return bool(os.environ.get("REPRO_NO_CACHE"))


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """One directory of ``<fingerprint>.json`` result files.

    The cache is strictly best-effort: unreadable directories, corrupt
    entries, and write failures all degrade to cache misses rather than
    errors, so a broken cache can never make a suite run fail — at worst
    it makes it slow.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = Path(directory or default_cache_dir())
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> "Optional[WorkloadRun]":
        """The cached run for ``fingerprint``, or ``None`` on any miss."""
        from .runner import WorkloadRun

        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as f:
                entry = json.load(f)
            if entry.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError(f"format {entry.get('format')!r}")
            run = WorkloadRun.from_payload(entry["run"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Truncated write, hand-edited garbage, stale format: drop the
            # entry so the fresh result can be rewritten in its place.
            self.misses += 1
            self._discard(path, reason=f"{type(exc).__name__}: {exc}")
            return None
        self.hits += 1
        return run

    def put(self, fingerprint: str, run: "WorkloadRun",
            config_fingerprint: Optional[str] = None) -> bool:
        """Persist ``run``; returns False (and stays silent) on failure.

        ``config_fingerprint`` (the :meth:`GpuConfig.fingerprint` the run
        was simulated under) is stored alongside the payload so
        :meth:`breakdown` can attribute disk usage per configuration —
        sweeps multiply entries across many configs.
        """
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "workload": run.workload,
            "isa": run.isa,
            "config": config_fingerprint,
            "run": run.to_payload(),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so a crash mid-write leaves no truncated
            # entry under the final name (readers see old-or-new, never
            # half-written).
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(entry, f, sort_keys=True)
                os.replace(tmp_name, self._path(fingerprint))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def _discard(self, path: Path, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        try:
            entries = list(self.directory.glob("*.json"))
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune_older_than(self, days: float) -> "Tuple[int, int]":
        """Delete entries whose mtime is older than ``days`` days.

        Returns ``(entries_removed, bytes_freed)``.  Sweeps multiply
        cache growth across config fingerprints; age-based pruning is
        always safe because every entry is a pure content-addressed
        memoization — at worst a pruned cell is re-simulated.
        """
        import time

        cutoff = time.time() - days * 86400.0
        removed = 0
        freed = 0
        try:
            entries = list(self.directory.glob("*.json"))
        except OSError:
            return (0, 0)
        for path in entries:
            try:
                stat = path.stat()
                if stat.st_mtime >= cutoff:
                    continue
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += stat.st_size
        return (removed, freed)

    def breakdown(self) -> "Dict[str, Dict[str, int]]":
        """Per-config-fingerprint usage: ``{config: {entries, bytes}}``.

        Entries written before the config fingerprint was recorded (or
        unreadable ones) are grouped under ``"(unknown)"``.
        """
        out: Dict[str, Dict[str, int]] = {}
        try:
            entries = list(self.directory.glob("*.json"))
        except OSError:
            return out
        for path in entries:
            config = "(unknown)"
            size = 0
            try:
                size = path.stat().st_size
                with open(path, "r", encoding="utf-8") as f:
                    config = json.load(f).get("config") or "(unknown)"
            except (OSError, ValueError):
                pass
            bucket = out.setdefault(str(config), {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return out

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


#: In-process memo of parsed traces keyed by file path, validated by
#: (mtime_ns, size).  Every sweep cell replaying the same capture then
#: shares one parsed :class:`ExecTrace` — and the vector engine's
#: per-wavefront decode memo attached to it — instead of re-reading and
#: re-parsing the blob per cell.  ``put`` goes through ``os.replace``,
#: which bumps the mtime, so a re-captured trace invalidates naturally.
#:
#: The memo is LRU-bounded: a long-lived ``repro serve`` daemon (or a
#: dist worker pulling shards from many suites) touches an unbounded set
#: of functional fingerprints over its lifetime, and parsed traces are
#: the largest in-process objects by far.  :func:`_trace_memo_cap`
#: reads ``REPRO_TRACE_MEMO`` fresh per insert so tests (and operators)
#: can retune a running process; 0 disables memoization entirely.
_LOADED_TRACES: "OrderedDict[str, Tuple[int, int, object]]" = OrderedDict()

#: Default bound on distinct parsed traces held in process.  A sweep
#: over one suite touches ~20 fingerprints; 64 leaves headroom for a
#: few concurrent suites without letting a daemon grow monotonically.
DEFAULT_TRACE_MEMO = 64


def _trace_memo_cap() -> int:
    raw = os.environ.get("REPRO_TRACE_MEMO", "")
    try:
        return int(raw) if raw else DEFAULT_TRACE_MEMO
    except ValueError:
        return DEFAULT_TRACE_MEMO


def clear_trace_memo() -> None:
    """Drop the in-process parsed-trace memo (test isolation helper)."""
    _LOADED_TRACES.clear()


class TraceStore:
    """One directory of ``<fingerprint>.trace`` execution-trace blobs.

    The store holds :class:`~repro.timing.replay.ExecTrace` captures keyed
    by :func:`trace_fingerprint` and shares :class:`ResultCache`'s
    best-effort contract: corrupt or truncated entries read as misses and
    are discarded so the next capture rewrites them, and write failures
    degrade to "re-capture next time", never to an error.  Pool workers
    of a sweep all point at the same directory, so whichever worker
    captures first publishes the trace for every other point.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = (
            Path(directory) if directory else Path(default_cache_dir()) / "traces"
        )
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.trace"

    def has(self, fingerprint: str) -> bool:
        """Cheap existence probe (no parse) for sweep capture planning."""
        try:
            return self._path(fingerprint).is_file()
        except OSError:
            return False

    def get(self, fingerprint: str) -> "Optional[object]":
        """The stored trace, or ``None`` on any miss (corrupt → discard)."""
        from ..timing.replay import ExecTrace, TraceError

        path = self._path(fingerprint)
        key = str(path)
        try:
            st = path.stat()
        except OSError:
            self.misses += 1
            _LOADED_TRACES.pop(key, None)
            return None
        memo = _LOADED_TRACES.get(key)
        if (memo is not None and memo[0] == st.st_mtime_ns
                and memo[1] == st.st_size):
            _LOADED_TRACES.move_to_end(key)  # LRU touch
            self.hits += 1
            return memo[2]
        try:
            blob = path.read_bytes()
            trace = ExecTrace.from_bytes(blob)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, TraceError, ValueError) as exc:
            self.misses += 1
            self._discard(path, reason=f"{type(exc).__name__}: {exc}")
            return None
        cap = _trace_memo_cap()
        if cap > 0:
            _LOADED_TRACES[key] = (st.st_mtime_ns, st.st_size, trace)
            _LOADED_TRACES.move_to_end(key)
            while len(_LOADED_TRACES) > cap:
                _LOADED_TRACES.popitem(last=False)
        self.hits += 1
        return trace

    def put(self, fingerprint: str, trace: "object") -> bool:
        """Persist ``trace``; returns False (and stays silent) on failure."""
        try:
            blob = trace.to_bytes()  # type: ignore[attr-defined]
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".trace", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                os.replace(tmp_name, self._path(fingerprint))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def read_blob(self, fingerprint: str) -> Optional[bytes]:
        """The raw serialized trace bytes (no parse) — the unit workers
        of a distributed sweep sync between stores by fingerprint."""
        try:
            return self._path(fingerprint).read_bytes()
        except OSError:
            return None

    def write_blob(self, fingerprint: str, blob: bytes) -> bool:
        """Store raw trace bytes received from another store.

        The blob is parsed before it lands so a truncated or corrupt
        transfer can never poison the store: an unparseable blob is
        refused (returns False) instead of written.
        """
        from ..timing.replay import ExecTrace, TraceError

        try:
            ExecTrace.from_bytes(blob)
        except (TraceError, ValueError):
            return False
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".trace", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                os.replace(tmp_name, self._path(fingerprint))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def _discard(self, path: Path, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every trace; returns how many files were removed."""
        removed = 0
        try:
            entries = list(self.directory.glob("*.trace"))
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune_older_than(self, days: float) -> "Tuple[int, int]":
        """Delete traces whose mtime is older than ``days`` days.

        Returns ``(traces_removed, bytes_freed)``.  Safe for the same
        reason result-cache pruning is: a pruned trace is re-captured by
        the next sweep that needs it.
        """
        import time

        cutoff = time.time() - days * 86400.0
        removed = 0
        freed = 0
        try:
            entries = list(self.directory.glob("*.trace"))
        except OSError:
            return (0, 0)
        for path in entries:
            try:
                stat = path.stat()
                if stat.st_mtime >= cutoff:
                    continue
                path.unlink()
            except OSError:
                continue
            _LOADED_TRACES.pop(str(path), None)
            removed += 1
            freed += stat.st_size
        return (removed, freed)

    def breakdown(self) -> "Dict[str, Dict[str, int]]":
        """Per-functional-fingerprint usage: ``{fingerprint: {entries,
        bytes}}`` (the file stem *is* the trace fingerprint)."""
        out: Dict[str, Dict[str, int]] = {}
        try:
            entries = list(self.directory.glob("*.trace"))
        except OSError:
            return out
        for path in entries:
            try:
                size = path.stat().st_size
            except OSError:
                continue
            bucket = out.setdefault(path.stem, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return out

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


def resolve_trace_store(trace_dir: Optional[str]) -> Optional[TraceStore]:
    """The trace store replay should use, honouring env overrides.

    An explicit ``trace_dir`` always wins; with none given the store lives
    under the result-cache directory (``<cache-dir>/traces``) and is
    disabled together with it by ``REPRO_NO_CACHE`` — replay degrades to
    plain execution rather than failing.
    """
    if trace_dir is not None:
        return TraceStore(trace_dir)
    if cache_disabled_by_env():
        return None
    return TraceStore()


def resolve_cache(
    use_disk_cache: Optional[bool],
    cache_dir: Optional[str],
) -> Optional[ResultCache]:
    """The cache the harness should use, honouring env overrides.

    ``use_disk_cache=None`` means "on unless ``REPRO_NO_CACHE`` is set";
    explicit True/False wins over the environment.
    """
    if use_disk_cache is None:
        use_disk_cache = not cache_disabled_by_env()
    if not use_disk_cache:
        return None
    return ResultCache(cache_dir)
