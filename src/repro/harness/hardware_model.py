"""Synthetic hardware proxy for the paper's Table 7.

The paper compares simulated runtimes against an AMD A12-8800B APU.  No
GPU hardware exists in this environment, so we substitute a deterministic
*hardware proxy*: the "measured" runtime of each workload is the GCN3
simulation's runtime scaled by a per-workload perturbation drawn from a
seeded lognormal distribution.  The perturbation stands in for everything
the open-source model gets wrong against silicon (memory-system detail,
clock domains, driver effects) — the paper reports ~42-45% mean absolute
error for GCN3 simulation from exactly those sources.

What the substitution preserves is the *relationship under test*: GCN3
simulation differs from hardware only by modeling error, while HSAIL
simulation stacks its abstraction error on top, so its mean absolute
error is larger and its per-workload variance higher, even though both
ISAs' runtimes still *correlate* strongly with hardware.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .runner import SuiteResults

#: Calibration: hardware is this fraction of simulated GCN3 cycles on
#: average (the simulator overestimates runtime)...
_BASE_SCALE = 0.85
#: ...with this lognormal sigma of per-workload modeling error.  These
#: constants are calibrated so the GCN3-vs-proxy mean absolute error
#: lands near the paper's ~42-45% Table 7 model error.
_SIGMA = 0.3


def _perturbation(workload: str) -> float:
    """Deterministic per-workload modeling-error factor."""
    digest = hashlib.sha256(f"hw-proxy:{workload}".encode()).digest()
    # Two uniform samples -> one standard normal (Box-Muller).
    u1 = (int.from_bytes(digest[:8], "big") + 1) / (2 ** 64 + 2)
    u2 = int.from_bytes(digest[8:16], "big") / 2 ** 64
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return math.exp(_SIGMA * z)


def hardware_cycles(workload: str, gcn3_cycles: int) -> float:
    """The proxy's 'measured' hardware runtime for one workload."""
    return gcn3_cycles * _BASE_SCALE * _perturbation(workload)


@dataclass
class CorrelationReport:
    """Table 7: correlation and mean absolute error per ISA."""

    correlation: Dict[str, float]
    mean_abs_error: Dict[str, float]
    per_workload_error: Dict[str, Dict[str, float]]

    def added_error(self) -> float:
        """Extra error IL simulation adds over machine-ISA simulation."""
        return self.mean_abs_error["hsail"] - self.mean_abs_error["gcn3"]

    def error_stddev(self, isa: str) -> float:
        """Spread of per-workload error — the paper notes GCN3 error
        'remains consistent across kernels, while HSAIL error exhibits
        high variance'."""
        errors = list(self.per_workload_error[isa].values())
        if len(errors) < 2:
            return 0.0
        mean = sum(errors) / len(errors)
        return (sum((e - mean) ** 2 for e in errors) / len(errors)) ** 0.5


def _pearson(xs: List[float], ys: List[float]) -> float:
    n = len(xs)
    if n < 2:
        return 1.0
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 1.0
    return cov / math.sqrt(vx * vy)


def correlate(results: SuiteResults) -> CorrelationReport:
    """Compute Table 7 from a suite run."""
    hw: Dict[str, float] = {}
    sim: Dict[str, Dict[str, float]] = {"hsail": {}, "gcn3": {}}
    for w in results.workloads:
        hs, g3 = results.pair(w)
        hw[w] = hardware_cycles(w, g3.cycles)
        sim["hsail"][w] = float(hs.cycles)
        sim["gcn3"][w] = float(g3.cycles)

    correlation: Dict[str, float] = {}
    mae: Dict[str, float] = {}
    per: Dict[str, Dict[str, float]] = {"hsail": {}, "gcn3": {}}
    order = sorted(hw)
    hw_list = [hw[w] for w in order]
    for isa in ("hsail", "gcn3"):
        sim_list = [sim[isa][w] for w in order]
        correlation[isa] = _pearson(sim_list, hw_list)
        errors = []
        for w in order:
            err = abs(sim[isa][w] - hw[w]) / hw[w]
            per[isa][w] = err
            errors.append(err)
        mae[isa] = sum(errors) / len(errors) if errors else 0.0
    return CorrelationReport(
        correlation=correlation, mean_abs_error=mae, per_workload_error=per
    )


def table07_rows(results: SuiteResults) -> Tuple[str, List[str], List[List[object]]]:
    report = correlate(results)
    headers = ["ISA", "Correlation", "Mean abs. error %", "Error stddev %"]
    rows: List[List[object]] = [
        ["HSAIL", report.correlation["hsail"],
         100.0 * report.mean_abs_error["hsail"],
         100.0 * report.error_stddev("hsail")],
        ["GCN3", report.correlation["gcn3"],
         100.0 * report.mean_abs_error["gcn3"],
         100.0 * report.error_stddev("gcn3")],
        ["IL-added error", "", 100.0 * report.added_error(), ""],
    ]
    return ("Table 7: hardware correlation and absolute runtime error",
            headers, rows)
