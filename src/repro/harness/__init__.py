"""Experiment harness: suite runner, figure generators, hardware proxy."""

from .figures import ALL_FIGURES
from .hardware_model import correlate, hardware_cycles, table07_rows
from .runner import SuiteResults, WorkloadRun, run_suite, run_workload

__all__ = [
    "ALL_FIGURES",
    "correlate",
    "hardware_cycles",
    "table07_rows",
    "SuiteResults",
    "WorkloadRun",
    "run_suite",
    "run_workload",
]
