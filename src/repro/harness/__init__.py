"""Experiment harness: suite runner, parallel fan-out, result cache,
figure generators, hardware proxy."""

from .cache import ResultCache, job_fingerprint, source_tree_stamp
from .figures import ALL_FIGURES
from .hardware_model import correlate, hardware_cycles, table07_rows
from .parallel import Job, JobEvent, run_jobs
from .runner import (
    SuiteResults,
    WorkloadRun,
    clear_suite_cache,
    execute_run_request,
    execute_suite_request,
    run_workload,
)

__all__ = [
    "ALL_FIGURES",
    "Job",
    "JobEvent",
    "ResultCache",
    "SuiteResults",
    "WorkloadRun",
    "clear_suite_cache",
    "correlate",
    "execute_run_request",
    "execute_suite_request",
    "hardware_cycles",
    "job_fingerprint",
    "run_jobs",
    "run_workload",
    "source_tree_stamp",
    "table07_rows",
]
