"""Process-pool fan-out for the (workload x ISA) simulation matrix.

The matrix is embarrassingly parallel — every (workload, ISA, scale, seed)
cell simulates independently — so :func:`run_jobs` spreads cells across a
:class:`~concurrent.futures.ProcessPoolExecutor` and reduces the results
back into a deterministic, submission-ordered mapping that is
stat-identical to running the same cells serially.

Failure policy (a worker must never take the suite down with it):

* a worker that *raises* surfaces as a marked-failed :class:`WorkloadRun`
  carrying the exception message;
* a worker that exceeds the per-job timeout is recorded as failed with a
  timeout message and its pool process is terminated at shutdown so the
  suite cannot hang on it;
* a worker that *dies* (crash, ``os._exit``, OOM-kill) breaks the pool for
  every job still in flight; those jobs are retried inline in the parent
  process, and only jobs that fail again stay failed.

Results cross the process boundary as the same JSON-friendly payloads the
on-disk cache stores (:meth:`WorkloadRun.to_payload`), keeping transport,
persistence, and the golden-stats format identical.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..common.config import GpuConfig
from ..core.requests import RunRequest
from ..obs.trace import TraceConfig


@dataclass(frozen=True)
class Job:
    """One cell of the simulation matrix.

    Since the request-object redesign a job *is* a serializable
    :class:`~repro.core.requests.RunRequest` plus pool bookkeeping: the
    request rides across the process boundary (frozen, picklable) and is
    the exact same object the CLI, ``Session``, and the ``repro serve``
    daemon execute — one schema, one code path.
    """

    request: RunRequest
    #: sweep-point tag.  Empty for plain suites (the key stays the
    #: two-tuple the serial reduce expects); a sweep sets it to the point
    #: id so cells of *different* configs for the same (workload, isa)
    #: stop colliding in the result mapping.
    point: str = ""

    @classmethod
    def build(cls, workload: str, isa: str, scale: float, seed: int,
              config: GpuConfig, *, trace: Optional[TraceConfig] = None,
              point: str = "", execution: str = "execute",
              trace_dir: Optional[str] = None, engine: str = "") -> "Job":
        """Convenience constructor matching the pre-request field list."""
        return cls(
            request=RunRequest(
                workload=workload, isa=isa, scale=scale, seed=seed,
                config=config, trace=trace, execution=execution,
                trace_dir=trace_dir, engine=engine,
            ),
            point=point,
        )

    # -- request field views (the request is the source of truth) -------------

    @property
    def workload(self) -> str:
        return self.request.workload

    @property
    def isa(self) -> str:
        return self.request.isa

    @property
    def scale(self) -> float:
        return self.request.scale

    @property
    def seed(self) -> int:
        return self.request.seed

    @property
    def config(self) -> GpuConfig:
        return self.request.config

    @property
    def trace(self) -> Optional[TraceConfig]:
        return self.request.trace

    @property
    def execution(self) -> str:
        return self.request.execution

    @property
    def trace_dir(self) -> Optional[str]:
        return self.request.trace_dir

    @property
    def engine(self) -> str:
        return self.request.engine

    @property
    def key(self) -> "Tuple[str, ...]":
        if self.point:
            return (self.point, self.workload, self.isa)
        return (self.workload, self.isa)

    def describe(self) -> str:
        prefix = f"[{self.point}] " if self.point else ""
        return f"{prefix}{self.request.describe()}"


@dataclass(frozen=True)
class JobEvent:
    """One structured progress line for a finished (or skipped) job."""

    workload: str
    isa: str
    status: str          # "hit" | "ok" | "failed" | "timeout" | "journal"
    wall_seconds: float
    index: int           # 1-based position in the suite
    total: int
    #: sweep-point id; empty outside sweeps.
    point: str = ""

    def format(self) -> str:
        where = (f"{self.point}:{self.workload}/{self.isa}" if self.point
                 else f"{self.workload}/{self.isa}")
        return (
            f"[{self.index}/{self.total}] {where} "
            f"{self.status} {self.wall_seconds:.2f}s"
        )


ProgressFn = Callable[[JobEvent], None]

#: called with (job, run) as each result lands, in submission order —
#: the sweep journal appends a point the moment its last cell resolves.
ResultFn = Callable[[Job, object], None]


def execute_job(job: Job) -> "Dict[str, object]":
    """Worker entry point: simulate one job, return its payload.

    Must stay a module-level function so the pool can pickle it; imports
    lazily to keep worker start-up (and the parallel<->runner import
    cycle) cheap.  Executes the job's request through the same
    :func:`~repro.harness.runner.execute_run_request` path as every
    other surface.
    """
    from .runner import execute_run_request

    return execute_run_request(job.request).to_payload()


def _failed_run(job: Job, message: str, wall: float) -> "object":
    from .runner import WorkloadRun
    from ..common.stats import StatSet

    return WorkloadRun(
        workload=job.workload,
        isa=job.isa,
        verified=False,
        total=StatSet(),
        per_dispatch=[],
        dispatch_kernel_names=[],
        data_footprint_bytes=0,
        instr_footprint_bytes=0,
        static_instructions=0,
        kernel_code_bytes={},
        wall_seconds=wall,
        error=message,
    )


def run_job_inline(
    job: Job, execute: Optional[Callable[[Job], "Dict[str, object]"]] = None
) -> "object":
    """Run one job in this process with the same failure capture as a
    worker: an exception becomes a marked-failed run, never a raise."""
    from .runner import WorkloadRun

    execute = execute or execute_job
    start = time.monotonic()
    try:
        payload = execute(job)
        return WorkloadRun.from_payload(payload)
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        return _failed_run(
            job, f"{type(exc).__name__}: {exc}", time.monotonic() - start
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a job-count request: None/0/negative mean 'all cores'.

    'All cores' respects CPU affinity (cgroup/taskset limits) where the
    platform exposes it, falling back to the raw core count.
    """
    if jobs is None or jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # macOS/Windows
            return max(1, os.cpu_count() or 1)
    return jobs


def run_jobs(
    jobs: Sequence[Job],
    max_workers: int,
    timeout: Optional[float] = None,
    execute: Optional[Callable[[Job], "Dict[str, object]"]] = None,
    progress: Optional[ProgressFn] = None,
    progress_offset: int = 0,
    progress_total: Optional[int] = None,
    on_result: Optional[ResultFn] = None,
) -> "Dict[Tuple[str, ...], object]":
    """Fan ``jobs`` out over ``max_workers`` processes.

    Returns ``{job.key: WorkloadRun}`` with keys inserted in submission
    order regardless of completion order, so downstream consumers observe
    exactly the ordering the serial path produces.  ``on_result`` fires
    per job as its result lands (also in submission order), before the
    corresponding ``progress`` event.
    """
    from .runner import WorkloadRun

    execute = execute or execute_job
    total = progress_total if progress_total is not None else len(jobs)
    results: "Dict[Tuple[str, ...], object]" = {}
    if not jobs:
        return results

    max_workers = min(max_workers, len(jobs))
    pool = ProcessPoolExecutor(max_workers=max_workers)
    timed_out = False
    pool_broken = False
    try:
        futures = [(job, pool.submit(execute, job)) for job in jobs]
        for index, (job, future) in enumerate(futures):
            start = time.monotonic()
            status = "ok"
            if pool_broken:
                # The pool died under us; finish the tail in-process.
                run = run_job_inline(job, execute)
                status = "failed" if getattr(run, "error", None) else "ok"
            else:
                try:
                    payload = future.result(timeout=timeout)
                    run = WorkloadRun.from_payload(payload)
                except FuturesTimeoutError:
                    future.cancel()
                    timed_out = True
                    status = "timeout"
                    run = _failed_run(
                        job,
                        f"timed out after {timeout:g}s",
                        time.monotonic() - start,
                    )
                except BrokenProcessPool as exc:
                    pool_broken = True
                    run = run_job_inline(job, execute)
                    if getattr(run, "error", None):
                        run.error = (
                            f"worker process died ({exc}); inline retry "
                            f"failed: {run.error}"
                        )
                        status = "failed"
                except Exception as exc:  # raised inside the worker
                    status = "failed"
                    run = _failed_run(
                        job,
                        f"{type(exc).__name__}: {exc}",
                        time.monotonic() - start,
                    )
            results[job.key] = run
            if on_result is not None:
                on_result(job, run)
            if progress is not None:
                progress(JobEvent(
                    workload=job.workload,
                    isa=job.isa,
                    status=status,
                    wall_seconds=getattr(run, "wall_seconds", 0.0),
                    index=progress_offset + index + 1,
                    total=total,
                    point=job.point,
                ))
    finally:
        if timed_out:
            # A stuck worker would make a graceful shutdown wait forever;
            # cancel what never started and terminate what never finished.
            processes = list(getattr(pool, "_processes", {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return results
