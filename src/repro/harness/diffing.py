"""Suite-result diffing: compare two JSON result exports.

Development aid: ``python -m repro diff before.json after.json`` flags
statistically meaningful movements between two runs (e.g. before/after a
model change), so silent regressions in cycles, flush counts, or footprints
show up immediately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Statistics compared per (workload, isa), with relative-change thresholds.
WATCHED_STATS = {
    "cycles": 0.02,
    "dynamic_instructions": 0.0,       # any change is notable
    "ib_flushes": 0.0,
    "vrf_bank_conflicts": 0.05,
    "simd_utilization": 0.01,
}
WATCHED_FIELDS = {
    "data_footprint_bytes": 0.0,
    "instr_footprint_bytes": 0.0,
    "static_instructions": 0.0,
}


@dataclass
class Delta:
    """One meaningful change between two runs."""

    workload: str
    isa: str
    stat: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / self.before

    def render(self) -> str:
        return (f"{self.workload}/{self.isa} {self.stat}: "
                f"{self.before:g} -> {self.after:g} "
                f"({self.relative:+.1%})")


def _index(payload: dict) -> Dict[Tuple[str, str], dict]:
    return {(r["workload"], r["isa"]): r for r in payload["runs"]}


def diff_payloads(before: dict, after: dict) -> List[Delta]:
    """All watched changes between two parsed JSON exports."""
    a_runs = _index(before)
    b_runs = _index(after)
    deltas: List[Delta] = []
    for key in sorted(set(a_runs) & set(b_runs)):
        workload, isa = key
        a, b = a_runs[key], b_runs[key]
        if a.get("verified") != b.get("verified"):
            deltas.append(Delta(workload, isa, "verified",
                                float(a.get("verified", 0)),
                                float(b.get("verified", 0))))
        for stat, threshold in WATCHED_STATS.items():
            av = float(a["stats"].get(stat, 0.0))
            bv = float(b["stats"].get(stat, 0.0))
            if _moved(av, bv, threshold):
                deltas.append(Delta(workload, isa, stat, av, bv))
        for field, threshold in WATCHED_FIELDS.items():
            av = float(a.get(field, 0.0))
            bv = float(b.get(field, 0.0))
            if _moved(av, bv, threshold):
                deltas.append(Delta(workload, isa, field, av, bv))
    only_before = sorted(set(a_runs) - set(b_runs))
    only_after = sorted(set(b_runs) - set(a_runs))
    for workload, isa in only_before:
        deltas.append(Delta(workload, isa, "run-removed", 1, 0))
    for workload, isa in only_after:
        deltas.append(Delta(workload, isa, "run-added", 0, 1))
    return deltas


def _moved(before: float, after: float, threshold: float) -> bool:
    if before == after:
        return False
    if before == 0:
        return True
    return abs(after - before) / abs(before) > threshold


def diff_files(path_before: str, path_after: str) -> List[Delta]:
    with open(path_before) as f:
        before = json.load(f)
    with open(path_after) as f:
        after = json.load(f)
    return diff_payloads(before, after)
