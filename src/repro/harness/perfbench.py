"""Perf-trajectory bench harness: time the tier-1 suite, emit JSON.

The cycle model is the repo's hot path: every figure, sweep cell, and
trace comes out of it, so simulator wall-clock *is* a first-class
deliverable.  This module measures it reproducibly:

* :func:`run_bench` times every (workload x ISA) cell of the tier-1
  suite in-process — wall seconds, simulated cycles, simulated cycles
  per wall second, dynamic instructions, and the process peak RSS —
  always bypassing every cache layer (a cached result would time JSON
  deserialization, not the simulator).
* :func:`write_report` emits a machine-readable ``BENCH_*.json``
  (schema ``repro-bench/1``, see below) at the repo root; each PR that
  touches the hot path records a new file, establishing a perf
  trajectory reviewers can diff.
* :func:`compare` folds a prior ``BENCH_*.json`` in as the baseline:
  per-cell and geomean speedups are embedded in the new report, and
  cells slower than ``baseline * (1 + threshold)`` are flagged as
  regressions.  A committed baseline was measured in a *different
  epoch* (another host, another day, another container placement) and
  its wall numbers drift double-digit percentages for reasons that
  have nothing to do with the code, so by default it is a correctness
  gate only: ``cycle_drift`` and schema violations fail, wall-clock
  regressions are warnings.  Pass ``wall_gate=True`` (CLI
  ``--wall-gate``) to restore hard wall gating for same-epoch
  baselines you trust.
* :func:`run_bench_against` is the honest way to get a wall-clock
  number: it checks the baseline tree out into a scratch worktree and
  alternates current/baseline bench runs in the *same* epoch
  (interleaved rounds, per-cell minima), so both sides see the same
  host weather.

Schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "label": "PR4",                  # free-form trajectory label
      "created_unix": 1754000000,      # seconds since the epoch
      "host": {"python": "3.11.7", "platform": "linux", "machine": "x86_64"},
      "epoch": {                       # measurement-epoch identity
        "host": "buildbox-03",         # who measured (platform.node())
        "timestamp": 1754000000,       # when (== created_unix)
        "rounds": 3                    # interleaved A/B rounds (1 = plain run)
      },
      "scale": 0.5, "seed": 7, "repeats": 1,
      "config_fingerprint": "…",       # GpuConfig identity
      "cells": [                       # one per workload x ISA x engine
        {"workload": "fft", "isa": "gcn3", "engine": "scalar",
         "verified": true,
         "wall_seconds": 1.93,         # best of `repeats` runs
         "capture_wall_seconds": null, # vector rows: one-off capture cost
         "replay_wall_seconds": null,  # vector rows: best warm replay
         "cycles": 193121, "dynamic_instructions": 20256,
         "cycles_per_second": 100062.7, "peak_rss_kb": 123456}
      ],
      "totals": {"wall_seconds": 9.7, "geomean_wall_seconds": 0.41,
                 "cycles_per_second": …},
      "baseline": {                    # only when compared against one
        "path": "BENCH_BASELINE.json", "label": "pre-PR4",
        "created_unix": …, "config_fingerprint": "…",
        "cells": [{"workload": …, "isa": …, "wall_seconds": …,
                   "speedup": 1.8, "regression": false}],
        "geomean_speedup": 1.83, "regressions": []
      },
      "sweep": {                       # only with a trace-replay sweep bench
        "axis": "l1d.size_bytes=8k,…", "points": 16, "repeats": 2,
        "engine": "auto",              # replay-pass cycle-engine request
        "execute_wall_seconds": 120.0, "replay_wall_seconds": 45.0,
        "speedup": 2.67, "captures": 6, "replays": 90,
        "replay_drift": 0, "cells_identical": true
      }
    }

Geomeans are taken over per-cell wall seconds (resp. speedups), the
standard summary for a suite whose cells span two orders of magnitude.
The ``sweep`` section (:func:`bench_sweep`) times the *same* timing-only
sweep twice — execute-at-issue vs trace replay — so the headline
perf-opt number of the replay subsystem is reproducible from one
command.
"""

from __future__ import annotations

import json
import math
import os
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import GpuConfig, paper_config
from ..common.errors import ReproError

SCHEMA = "repro-bench/1"

#: Default output name for this PR's trajectory point.
DEFAULT_OUTPUT = "BENCH_PR10.json"


class BenchError(ReproError):
    """A bench report could not be produced or compared."""


@dataclass
class BenchCell:
    """Timing of one (workload, isa, engine) simulation.

    ``engine`` records which cycle engine produced the number:
    ``"scalar"`` rows time the execute-at-issue reference path;
    ``"vector"`` rows time a warm-store trace replay under the batch
    engine (its operating regime — the one-off capture does not count
    toward ``wall_seconds``).  Reports written before the engine knob
    existed carry no ``engine`` key; readers default it to ``"scalar"``.

    ``capture_wall_seconds``/``replay_wall_seconds`` break a vector
    row's end-to-end cost apart: the one-off capture-mode run that
    seeds the trace store versus the best timed warm-store replay
    (which equals ``wall_seconds``).  Scalar rows never capture or
    replay, so both are ``None`` there; older reports lack the keys.
    """

    workload: str
    isa: str
    verified: bool
    wall_seconds: float
    cycles: int
    dynamic_instructions: int
    peak_rss_kb: int
    engine: str = "scalar"
    capture_wall_seconds: Optional[float] = None
    replay_wall_seconds: Optional[float] = None

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "isa": self.isa,
            "engine": self.engine,
            "verified": self.verified,
            "wall_seconds": round(self.wall_seconds, 4),
            "capture_wall_seconds": (
                round(self.capture_wall_seconds, 4)
                if self.capture_wall_seconds is not None else None),
            "replay_wall_seconds": (
                round(self.replay_wall_seconds, 4)
                if self.replay_wall_seconds is not None else None),
            "cycles": self.cycles,
            "dynamic_instructions": self.dynamic_instructions,
            "cycles_per_second": round(self.cycles_per_second, 1),
            "peak_rss_kb": self.peak_rss_kb,
        }


@dataclass
class BenchReport:
    """A full bench run plus (optionally) its baseline comparison."""

    label: str
    scale: float
    seed: int
    repeats: int
    config_fingerprint: str
    cells: List[BenchCell] = field(default_factory=list)
    baseline: Optional[Dict[str, object]] = None
    created_unix: int = 0
    #: optional trace-replay sweep comparison (see :func:`bench_sweep`).
    sweep: Optional[Dict[str, object]] = None
    #: interleaved A/B rounds behind each cell (1 = a plain single-epoch
    #: run; >1 only from :func:`run_bench_against`).
    rounds: int = 1

    @property
    def total_wall_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.cells)

    @property
    def geomean_wall_seconds(self) -> float:
        return _geomean([c.wall_seconds for c in self.cells])

    def cell(self, workload: str, isa: str,
             engine: Optional[str] = None) -> Optional[BenchCell]:
        for c in self.cells:
            if (c.workload == workload and c.isa == isa
                    and (engine is None or c.engine == engine)):
                return c
        return None

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": SCHEMA,
            "label": self.label,
            "created_unix": self.created_unix,
            "host": {
                "python": platform.python_version(),
                "platform": sys.platform,
                "machine": platform.machine(),
            },
            "epoch": {
                "host": platform.node(),
                "timestamp": self.created_unix,
                "rounds": self.rounds,
            },
            "scale": self.scale,
            "seed": self.seed,
            "repeats": self.repeats,
            "config_fingerprint": self.config_fingerprint,
            "cells": [c.to_dict() for c in self.cells],
            "totals": {
                "wall_seconds": round(self.total_wall_seconds, 4),
                "geomean_wall_seconds": round(self.geomean_wall_seconds, 4),
                "cycles_per_second": round(
                    sum(c.cycles for c in self.cells)
                    / max(self.total_wall_seconds, 1e-9), 1),
            },
        }
        if self.baseline is not None:
            doc["baseline"] = self.baseline
        if self.sweep is not None:
            doc["sweep"] = self.sweep
        return doc


def _geomean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def normalize_rss_kb(raw_maxrss: int, platform_name: str) -> int:
    """Normalize a raw ``ru_maxrss`` reading to KiB.

    POSIX leaves the unit unspecified and the big two disagree: Linux
    (and the BSDs other than macOS) report KiB, macOS reports *bytes*.
    Pure so both branches are testable off-platform.
    """
    if platform_name == "darwin":
        return int(raw_maxrss) // 1024
    return int(raw_maxrss)


def _peak_rss_kb() -> int:
    """This process's peak RSS in KiB, platform-normalized."""
    return normalize_rss_kb(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss, sys.platform
    )


ProgressFn = Optional[object]  # Callable[[str], None], kept loose for the CLI


#: Engines :func:`run_bench` knows how to time.
BENCH_ENGINES = ("scalar", "vector")


def run_bench(
    workloads: Optional[Sequence[str]] = None,
    scale: float = 0.5,
    seed: int = 7,
    config: Optional[GpuConfig] = None,
    repeats: int = 1,
    label: str = "PR10",
    progress=None,
    profile_dir: Optional[str] = None,
    engines: Sequence[str] = ("scalar",),
) -> BenchReport:
    """Time every (workload x ISA x engine) cell; best-of-``repeats``.

    Caches are bypassed unconditionally — the point is to time the
    simulator, and a warm disk cache would short-circuit it.

    ``engines`` selects which cycle engines get rows.  ``"scalar"``
    times the execute-at-issue reference path (the pre-engine-knob
    behaviour, and the default).  ``"vector"`` times the batch replay
    engine in its operating regime: each cell first captures a trace
    into a throwaway store (untimed — a sweep pays that cost once, not
    per cell), then times ``repeats`` warm-store replays with
    ``engine="vector"`` and reports the best.  Vector rows inherit
    ``verified`` from the capture run's functional check.

    With ``profile_dir`` set, every scalar repeat runs under
    :mod:`cProfile` and the last repeat's stats are dumped to
    ``<profile_dir>/<workload>_<isa>.prof`` (loadable with
    :mod:`pstats` or snakeviz).  Profiling adds interpreter overhead, so
    a profiled report's wall numbers are for relative reading only —
    never commit one as a trajectory point.  Vector rows are never
    profiled.
    """
    import shutil
    import tempfile

    from ..workloads import all_workloads
    from .cache import resolve_trace_store
    from .runner import ISAS, run_workload

    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    engines = tuple(engines)
    for eng in engines:
        if eng not in BENCH_ENGINES:
            raise BenchError(
                f"unknown bench engine {eng!r}; expected one of "
                f"{', '.join(BENCH_ENGINES)}")
    if not engines:
        raise BenchError("run_bench needs at least one engine")
    config = config or paper_config()
    names = list(workloads) if workloads else [w.name for w in all_workloads()]
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
    report = BenchReport(
        label=label, scale=scale, seed=seed, repeats=repeats,
        config_fingerprint=config.fingerprint(),
        created_unix=int(time.time()),
    )
    for engine in engines:
        if engine == "vector":
            tmp = tempfile.mkdtemp(prefix="repro-bench-vec-")
            store = resolve_trace_store(tmp)
            run_config = config.with_overrides({"engine": "vector"})
        else:
            tmp = store = None
            run_config = config
        try:
            for name in names:
                for isa in ISAS:
                    capture_wall = None
                    if store is not None:
                        # Seed the store.  The capture's wall time is
                        # recorded as the row's breakdown (a sweep pays
                        # it once per fingerprint) but never counts
                        # toward the headline wall_seconds.
                        seeded = run_workload(name, isa, scale=scale,
                                              config=config, seed=seed,
                                              execution="capture",
                                              trace_store=store)
                        capture_wall = seeded.wall_seconds
                    best = None
                    for _ in range(repeats):
                        if store is not None:
                            run = run_workload(
                                name, isa, scale=scale, config=run_config,
                                seed=seed, execution="replay",
                                trace_store=store)
                        elif profile_dir is not None:
                            import cProfile

                            profiler = cProfile.Profile()
                            profiler.enable()
                            try:
                                run = run_workload(name, isa, scale=scale,
                                                   config=run_config,
                                                   seed=seed)
                            finally:
                                profiler.disable()
                            profiler.dump_stats(
                                os.path.join(profile_dir,
                                             f"{name}_{isa}.prof"))
                        else:
                            run = run_workload(name, isa, scale=scale,
                                               config=run_config, seed=seed)
                        if best is None or run.wall_seconds < best.wall_seconds:
                            best = run
                    assert best is not None
                    cell = BenchCell(
                        workload=name,
                        isa=isa,
                        verified=best.verified,
                        wall_seconds=best.wall_seconds,
                        cycles=best.cycles,
                        dynamic_instructions=best.dynamic_instructions,
                        peak_rss_kb=_peak_rss_kb(),
                        engine=engine,
                        capture_wall_seconds=capture_wall,
                        replay_wall_seconds=(best.wall_seconds
                                             if store is not None else None),
                    )
                    report.cells.append(cell)
                    if progress is not None:
                        progress(
                            f"bench {name}/{isa}[{engine}]: "
                            f"{cell.wall_seconds:.2f}s "
                            f"({cell.cycles_per_second:,.0f} sim cycles/s)")
        finally:
            if tmp is not None:
                shutil.rmtree(tmp, ignore_errors=True)
    return report


def _resolve_bench_tree(against: str, root: str):
    """Materialize ``against`` as a source tree; returns (path, cleanup).

    ``against`` is either a directory that already holds a repro
    checkout (used as-is, no cleanup) or a git tree-ish, checked out
    into a scratch ``git worktree`` under a temp dir (cleanup detaches
    the worktree and removes the dir).
    """
    import shutil
    import subprocess
    import tempfile

    if os.path.isdir(against):
        tree = os.path.abspath(against)
        if not os.path.isdir(os.path.join(tree, "src", "repro")):
            raise BenchError(
                f"--against directory {against} has no src/repro tree")
        return tree, None
    tmp = tempfile.mkdtemp(prefix="repro-bench-against-")
    tree = os.path.join(tmp, "tree")
    try:
        subprocess.run(
            ["git", "-C", root, "worktree", "add", "--detach", tree, against],
            check=True, capture_output=True, text=True)
    except (subprocess.CalledProcessError, OSError) as exc:
        shutil.rmtree(tmp, ignore_errors=True)
        detail = getattr(exc, "stderr", "") or str(exc)
        raise BenchError(
            f"cannot check out --against tree {against!r}: "
            f"{detail.strip()}") from exc

    def cleanup() -> None:
        subprocess.run(
            ["git", "-C", root, "worktree", "remove", "--force", tree],
            capture_output=True)
        shutil.rmtree(tmp, ignore_errors=True)

    return tree, cleanup


def _bench_subprocess(
    tree: str,
    output: str,
    workloads: Optional[Sequence[str]],
    scale: float,
    seed: int,
    cus: Optional[int],
    engines: Sequence[str],
    label: str,
) -> Dict[str, object]:
    """Run ``python -m repro bench`` from ``tree`` and parse its JSON.

    A subprocess per side is the only way to time two *trees* in one
    epoch: each side imports its own checkout via ``PYTHONPATH``, pays
    its own interpreter startup outside the timed region, and leaves no
    module-cache residue for the other side.
    """
    import subprocess

    cmd = [
        sys.executable, "-m", "repro", "bench",
        "--repeats", "1",
        "--engines", ",".join(engines),
        "--label", label,
        "--scale", repr(scale),
        "--seed", str(seed),
        "--output", output,
        "--quiet",
    ]
    if workloads:
        cmd += ["--workloads", ",".join(workloads)]
    if cus is not None:
        cmd += ["--cus", str(cus)]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(tree, "src")
    proc = subprocess.run(cmd, cwd=tree, env=env,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        raise BenchError(
            f"bench subprocess in {tree} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}")
    try:
        with open(output) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(
            f"bench subprocess in {tree} wrote no readable report: "
            f"{exc}") from exc


def run_bench_against(
    against: str,
    rounds: int = 3,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 0.5,
    seed: int = 7,
    cus: Optional[int] = None,
    label: str = "PR10",
    threshold: float = 0.25,
    engines: Sequence[str] = ("scalar",),
    progress=None,
) -> BenchReport:
    """Paired same-epoch bench: this tree vs ``against``, interleaved.

    Container and host wall-clock drifts by double-digit percentages
    over minutes, so comparing a fresh run against a *committed*
    ``BENCH_*.json`` measures the weather, not the code.  This runs
    both sides **now**: ``against`` (a git tree-ish or a checkout
    directory) is materialized as a scratch worktree, then each of
    ``rounds`` rounds benches *both* trees back to back — alternating
    which side goes first, so neither systematically enjoys the warmer
    half of the epoch.  Each side keeps its per-cell **minimum** across
    rounds, and the final report embeds the baseline comparison
    (``wall_gate=True`` — a same-epoch baseline is enforceable) with
    the usual per-cell speedups, geomean, and cycle-drift check.

    Every side runs in a subprocess with ``PYTHONPATH`` pinned to its
    own ``src`` so the two trees never share a module cache.
    """
    if rounds < 1:
        raise BenchError(f"rounds must be >= 1, got {rounds}")
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    tree, cleanup = _resolve_bench_tree(against, root)
    import tempfile

    current_doc: Optional[Dict[str, object]] = None
    baseline_doc: Optional[Dict[str, object]] = None
    min_wall: Dict[Tuple[str, Tuple[str, str, str]], float] = {}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-pair-") as tmp:
            for rnd in range(rounds):
                sides = [("current", root), ("against", tree)]
                if rnd % 2:
                    sides.reverse()
                for side, side_tree in sides:
                    out = os.path.join(tmp, f"{side}_{rnd}.json")
                    doc = _bench_subprocess(
                        tree=side_tree, output=out, workloads=workloads,
                        scale=scale, seed=seed, cus=cus, engines=engines,
                        label=(label if side == "current"
                               else f"against:{against}"))
                    for cell in doc["cells"]:
                        key = (side, (cell["workload"], cell["isa"],
                                      cell.get("engine", "scalar")))
                        wall = float(cell["wall_seconds"])
                        if key not in min_wall or wall < min_wall[key]:
                            min_wall[key] = wall
                    if side == "current":
                        current_doc = doc
                    else:
                        baseline_doc = doc
                    if progress is not None:
                        total = sum(float(c["wall_seconds"])
                                    for c in doc["cells"])
                        progress(f"round {rnd + 1}/{rounds} {side}: "
                                 f"{total:.2f}s total wall")
    finally:
        if cleanup is not None:
            cleanup()
    assert current_doc is not None and baseline_doc is not None
    # Fold the per-cell minima back into the last round's documents.
    for side, doc in (("current", current_doc), ("against", baseline_doc)):
        for cell in doc["cells"]:
            key = (side, (cell["workload"], cell["isa"],
                          cell.get("engine", "scalar")))
            cell["wall_seconds"] = min_wall[key]
    report = BenchReport(
        label=label, scale=scale, seed=seed, repeats=1,
        config_fingerprint=str(current_doc["config_fingerprint"]),
        created_unix=int(time.time()),
        rounds=rounds,
    )
    for cell in current_doc["cells"]:
        report.cells.append(BenchCell(
            workload=str(cell["workload"]),
            isa=str(cell["isa"]),
            verified=bool(cell["verified"]),
            wall_seconds=float(cell["wall_seconds"]),
            cycles=int(cell["cycles"]),
            dynamic_instructions=int(cell["dynamic_instructions"]),
            peak_rss_kb=int(cell.get("peak_rss_kb", 0)),
            engine=str(cell.get("engine", "scalar")),
        ))
    compare(report, baseline_doc, f"against:{against}",
            threshold=threshold, wall_gate=True)
    assert report.baseline is not None
    report.baseline["against"] = against
    report.baseline["interleaved_rounds"] = rounds
    return report


def bench_sweep(
    axis_spec: str,
    workloads: Sequence[str],
    isas: Optional[Sequence[str]] = None,
    scale: float = 0.5,
    seed: int = 7,
    config: Optional[GpuConfig] = None,
    jobs: int = 1,
    repeats: int = 1,
    progress=None,
    engine: str = "auto",
) -> Dict[str, object]:
    """Time one timing-only sweep twice — execute-at-issue versus trace
    replay — and return the comparison as a report ``"sweep"`` section.

    ``engine`` is the cycle-engine request for the *replay* pass
    (``"auto"`` — the default — picks the vector engine on replayed
    cells whenever numpy is importable; ``"scalar"`` pins the reference
    path, which times the pre-vector replay subsystem).  The execute
    pass always runs the scalar reference engine, whatever is requested
    — that is the baseline being beaten.

    Both passes run the identical sweep spec with the result disk cache
    off and throwaway journal directories, so each pass simulates every
    cell.  The replay pass starts from an *empty* trace store: its wall
    time includes the one functional execution per workload x ISA that
    seeds the store, which is the honest end-to-end cost a user pays on
    a cold sweep.  The replay pass keeps ``verify_replay`` on, so the
    reported speedup also pays for the drift guard's re-execution.

    With ``repeats`` > 1, the execute/replay pass pair runs that many
    times and each side reports its *minimum* wall time (the standard
    best-of noise discipline; every replay repeat starts from a fresh
    cold store, so no repeat gets a warm-store advantage).  The
    statistical guards — per-cell identity and the in-sweep drift
    check — must hold on every repeat, not just the fastest one.
    """
    import shutil
    import tempfile

    from ..explore.space import Axis
    from ..explore.sweep import run_sweep
    from .runner import ISAS, clear_suite_cache

    if repeats < 1:
        raise BenchError(f"sweep repeats must be >= 1, got {repeats}")
    config = config or paper_config()
    axis = Axis.parse(axis_spec)
    isa_list = tuple(isas) if isas else ISAS
    names = list(workloads)
    execute_wall = replay_wall = float("inf")
    replayed = None
    drifted = False
    drift_count = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        for rep in range(repeats):
            common = dict(
                base=config, workloads=names, isas=isa_list, scale=scale,
                seed=seed, jobs=jobs, use_disk_cache=False,
                sweeps_dir=os.path.join(tmp, f"sweeps{rep}"),
                progress=progress,
            )
            trace_dir = os.path.join(tmp, f"traces{rep}")
            clear_suite_cache()
            start = time.monotonic()
            executed = run_sweep([axis], execution="execute", **common)
            execute_wall = min(execute_wall, time.monotonic() - start)
            clear_suite_cache()
            start = time.monotonic()
            rep_res = run_sweep([axis], execution="auto",
                                trace_dir=trace_dir, engine=engine,
                                verify_replay=True, **common)
            wall = time.monotonic() - start
            for label, res in (("execute", executed), ("replay", rep_res)):
                if res.failed_points:
                    first = res.failed_points[0]
                    raise BenchError(
                        f"sweep bench {label} pass failed at point "
                        f"{first.point.point_id}: {first.error}")
            drifted = drifted or _sweep_stats_differ(executed, rep_res)
            drift_count += rep_res.replay_drift
            if replayed is None or wall < replay_wall:
                replay_wall, replayed = wall, rep_res
            shutil.rmtree(trace_dir, ignore_errors=True)
    return {
        "axis": axis.describe(),
        "points": len(replayed.points),
        "workloads": names,
        "isas": list(isa_list),
        "scale": scale,
        "seed": seed,
        "jobs": jobs,
        "repeats": repeats,
        "engine": engine,
        "execute_wall_seconds": round(execute_wall, 4),
        "replay_wall_seconds": round(replay_wall, 4),
        "speedup": round(execute_wall / max(replay_wall, 1e-9), 3),
        "captures": replayed.captures,
        "replays": replayed.replays,
        "verified_cell": replayed.verified_cell,
        "replay_drift": drift_count,
        "cells_identical": not drifted,
    }


def _sweep_stats_differ(executed: object, replayed: object) -> bool:
    """True when the two passes' statistics differ anywhere.

    Belt and braces on top of the in-sweep drift guard: compares every
    cell of both sweeps, not one sampled cell.
    """
    exec_points = executed.points  # type: ignore[attr-defined]
    replay_points = replayed.points  # type: ignore[attr-defined]
    if len(exec_points) != len(replay_points):
        return True
    for ep, rp in zip(exec_points, replay_points):
        if set(ep.runs) != set(rp.runs):
            return True
        for key, erun in ep.runs.items():
            rrun = rp.runs[key]
            if (erun.verified != rrun.verified
                    or erun.total.to_payload() != rrun.total.to_payload()
                    or [s.to_payload() for s in erun.per_dispatch]
                    != [s.to_payload() for s in rrun.per_dispatch]):
                return True
    return False


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


def load_report(path: str) -> Dict[str, object]:
    """Load and schema-check a ``BENCH_*.json`` document."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read bench report {path}: {exc}") from exc
    validate_schema(doc, source=path)
    return doc


def validate_schema(doc: object, source: str = "<doc>") -> None:
    """Raise BenchError unless ``doc`` is a well-formed bench report."""
    if not isinstance(doc, dict):
        raise BenchError(f"{source}: bench report must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise BenchError(
            f"{source}: schema {doc.get('schema')!r} != {SCHEMA!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise BenchError(f"{source}: bench report has no cells")
    for cell in cells:
        for key in ("workload", "isa", "wall_seconds", "cycles"):
            if key not in cell:
                raise BenchError(f"{source}: cell missing {key!r}: {cell}")
        if cell["wall_seconds"] <= 0:
            raise BenchError(
                f"{source}: non-positive wall_seconds in "
                f"{cell['workload']}/{cell['isa']}")
    totals = doc.get("totals")
    if not isinstance(totals, dict) or "geomean_wall_seconds" not in totals:
        raise BenchError(f"{source}: bench report missing totals.geomean_wall_seconds")


def compare(
    report: BenchReport,
    baseline_doc: Dict[str, object],
    baseline_path: str,
    threshold: float = 0.25,
    wall_gate: bool = False,
) -> Tuple[float, List[str]]:
    """Fold a baseline into ``report``; returns (geomean_speedup, regressions).

    ``speedup`` per cell is ``baseline_wall / current_wall`` (>1 = this
    tree is faster).  A cell regresses when its wall exceeds the
    baseline's by more than ``threshold`` (fractional, e.g. 0.25 = 25%).
    Cells present on only one side are reported but never regress.
    Cells are matched on (workload, isa, engine); baselines written
    before the engine knob existed default to ``"scalar"``, so old
    reports keep comparing against the reference path and engine rows
    new in this run are reported as new cells.
    Simulated-cycle drift is flagged loudly: a "speedup" that changed
    the statistics is a broken model, not a faster one.

    ``wall_gate`` records the caller's gating intent in the embedded
    baseline block: ``False`` (the default) means the baseline comes
    from a different measurement epoch and its wall-clock deltas are
    advisory — only cycle drift should fail the run; ``True`` means
    the baseline is same-epoch (e.g. from :func:`run_bench_against`)
    and wall regressions are enforceable.  The return value is the
    same either way — callers decide what to do with ``regressions``.
    """
    base_cells = {
        (c["workload"], c["isa"], c.get("engine", "scalar")): c
        for c in baseline_doc["cells"]  # type: ignore[index,union-attr]
    }
    compared: List[Dict[str, object]] = []
    speedups: List[float] = []
    regressions: List[str] = []
    cycle_drift: List[str] = []
    for cell in report.cells:
        base = base_cells.pop((cell.workload, cell.isa, cell.engine), None)
        if base is None:
            compared.append({"workload": cell.workload, "isa": cell.isa,
                             "engine": cell.engine,
                             "wall_seconds": None, "speedup": None,
                             "regression": False, "note": "new cell"})
            continue
        speedup = float(base["wall_seconds"]) / cell.wall_seconds
        regressed = cell.wall_seconds > float(base["wall_seconds"]) * (1.0 + threshold)
        entry: Dict[str, object] = {
            "workload": cell.workload, "isa": cell.isa,
            "engine": cell.engine,
            "wall_seconds": base["wall_seconds"],
            "speedup": round(speedup, 3),
            "regression": regressed,
        }
        if int(base.get("cycles", cell.cycles)) != cell.cycles:
            entry["cycle_drift"] = {"baseline": base.get("cycles"),
                                    "current": cell.cycles}
            cycle_drift.append(f"{cell.workload}/{cell.isa}[{cell.engine}]")
        compared.append(entry)
        speedups.append(speedup)
        if regressed:
            regressions.append(
                f"{cell.workload}/{cell.isa}[{cell.engine}]: "
                f"{cell.wall_seconds:.3f}s vs "
                f"baseline {float(base['wall_seconds']):.3f}s "
                f"(> {threshold:.0%} slower)")
    for (workload, isa, engine) in sorted(base_cells):
        base = base_cells[(workload, isa, engine)]
        compared.append({"workload": workload, "isa": isa, "engine": engine,
                         "wall_seconds": base["wall_seconds"],
                         "speedup": None, "regression": False,
                         "note": "cell missing from current run"})
    geomean_speedup = _geomean(speedups)
    report.baseline = {
        "path": os.path.basename(baseline_path),
        "label": baseline_doc.get("label"),
        "created_unix": baseline_doc.get("created_unix"),
        "config_fingerprint": baseline_doc.get("config_fingerprint"),
        "threshold": threshold,
        "wall_gate": wall_gate,
        "cells": compared,
        "geomean_speedup": round(geomean_speedup, 3),
        "regressions": regressions,
        "cycle_drift": cycle_drift,
    }
    return geomean_speedup, regressions


def write_report(report: BenchReport, path: str) -> None:
    with open(path, "w") as f:
        json.dump(report.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")


def render_text(report: BenchReport) -> str:
    """Human-readable summary table for the CLI."""
    from ..common.tables import render_table

    base_cells: Dict[Tuple[str, str, str], Dict[str, object]] = {}
    if report.baseline is not None:
        base_cells = {
            (c["workload"], c["isa"], c.get("engine", "scalar")): c
            for c in report.baseline["cells"]  # type: ignore[index,union-attr]
        }
    rows = []
    for cell in report.cells:
        base = base_cells.get((cell.workload, cell.isa, cell.engine), {})
        speedup = base.get("speedup")
        rows.append([
            cell.workload, cell.isa, cell.engine,
            f"{cell.wall_seconds:.3f}",
            (f"{cell.capture_wall_seconds:.3f}"
             if cell.capture_wall_seconds is not None else "-"),
            (f"{cell.replay_wall_seconds:.3f}"
             if cell.replay_wall_seconds is not None else "-"),
            f"{cell.cycles_per_second:,.0f}",
            cell.cycles,
            f"{speedup:.2f}x" if speedup else "-",
            "REGRESSED" if base.get("regression") else
            ("yes" if cell.verified else "NO"),
        ])
    text = render_table(
        ["Workload", "ISA", "engine", "wall s", "capture s", "replay s",
         "sim cyc/s", "cycles", "speedup", "ok"],
        rows,
        title=f"repro bench [{report.label}] scale={report.scale:g} "
              f"repeats={report.repeats}",
    )
    lines = [text,
             f"total wall: {report.total_wall_seconds:.2f}s | "
             f"geomean cell: {report.geomean_wall_seconds:.3f}s"]
    if report.baseline is not None:
        lines.append(
            f"vs {report.baseline['path']}: geomean speedup "
            f"{report.baseline['geomean_speedup']}x, "
            f"{len(report.baseline['regressions'])} regression(s)")  # type: ignore[arg-type]
    if report.sweep is not None:
        sw = report.sweep
        lines.append(
            f"sweep replay [{sw['axis']}]: {sw['points']} points, "
            f"execute {sw['execute_wall_seconds']}s vs replay "
            f"{sw['replay_wall_seconds']}s = {sw['speedup']}x "
            f"({sw['captures']} capture(s), {sw['replays']} replay(s), "
            f"drift={sw['replay_drift']})")
    return "\n".join(lines)
