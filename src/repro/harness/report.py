"""Report rendering: figure tables with ASCII bars, full markdown report.

`python -m repro figures` uses :func:`write_report` to produce a single
document with every regenerated figure/table; the bar renderer gives the
normalized figures the visual shape of the paper's plots in plain text.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TextIO

from ..common.tables import render_table
from .figures import ALL_FIGURES, FigureData
from .hardware_model import table07_rows
from .runner import SuiteResults

_BAR_WIDTH = 40


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    reference: float = 1.0,
) -> str:
    """An ASCII bar chart with a reference line at ``reference``."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max(list(values) + [reference]) or 1.0
    scale = _BAR_WIDTH / peak
    ref_col = int(reference * scale)
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        filled = int(value * scale)
        bar = ""
        for i in range(_BAR_WIDTH + 1):
            if i == ref_col and i > filled:
                bar += "|"
            elif i < filled:
                bar += "#"
            elif i == filled:
                bar += "#" if value > 0 else " "
            else:
                bar += " "
        lines.append(f"{label.ljust(width)}  {bar.rstrip()}  {value:.2f}")
    return "\n".join(lines)


def figure_with_bars(data: FigureData, value_column: int = 3) -> str:
    """Render one figure's table followed by a bar view of its ratios."""
    title, headers, rows = data
    out = [render_table(headers, rows, title)]
    bar_rows = [r for r in rows
                if r[0] != "GEOMEAN" and isinstance(r[value_column], float)]
    if bar_rows:
        labels = [str(r[0]) for r in bar_rows]
        values = [float(r[value_column]) for r in bar_rows]
        out.append("")
        out.append(render_bars(labels, values,
                               title=f"({headers[value_column]}, ref = 1.0)"))
    return "\n".join(out)


_BAR_COLUMNS = {"fig05": 3, "fig06": 3, "fig07": 3, "fig08": 3,
                "fig09": 3, "fig11": 3, "fig12": 3}


def write_report(results: SuiteResults, stream: TextIO,
                 keys: Optional[Sequence[str]] = None) -> None:
    """Write every figure/table (plus Table 7) to ``stream``."""
    chosen = list(keys) if keys else list(ALL_FIGURES)
    print(f"# Lost in Abstraction — regenerated evaluation "
          f"(scale={results.scale})", file=stream)
    print(file=stream)
    for key in chosen:
        data = ALL_FIGURES[key](results)
        if key in _BAR_COLUMNS:
            print(figure_with_bars(data, _BAR_COLUMNS[key]), file=stream)
        else:
            title, headers, rows = data
            print(render_table(headers, rows, title), file=stream)
        print(file=stream)
    title, headers, rows = table07_rows(results)
    print(render_table(headers, rows, title), file=stream)
    print(file=stream)
    verified = "all verified" if results.all_verified() else "VERIFICATION FAILURES"
    print(f"functional checks: {verified}", file=stream)
