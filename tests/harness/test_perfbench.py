"""Perf-bench harness tests: schema, comparison math, report round-trip.

These run no simulations — they exercise the report/baseline machinery
on synthetic cells so CI can gate on them cheaply.
"""

import json

import pytest

from repro.harness.perfbench import (
    BenchCell,
    BenchError,
    BenchReport,
    bench_sweep,
    compare,
    load_report,
    normalize_rss_kb,
    render_text,
    run_bench,
    validate_schema,
    write_report,
)


def make_cell(workload="fft", isa="gcn3", wall=2.0, cycles=1000):
    return BenchCell(workload=workload, isa=isa, verified=True,
                     wall_seconds=wall, cycles=cycles,
                     dynamic_instructions=500, peak_rss_kb=1)


def make_report(cells):
    return BenchReport(label="test", scale=0.5, seed=7, repeats=1,
                       config_fingerprint="fp", cells=cells,
                       created_unix=1_700_000_000)


class TestSchema:
    def test_roundtrip_through_disk(self, tmp_path):
        report = make_report([make_cell()])
        path = str(tmp_path / "BENCH_test.json")
        write_report(report, path)
        doc = load_report(path)  # validates on load
        assert doc["schema"] == "repro-bench/1"
        assert doc["cells"][0]["workload"] == "fft"
        assert doc["totals"]["geomean_wall_seconds"] == 2.0

    def test_rejects_wrong_schema(self):
        doc = make_report([make_cell()]).to_dict()
        doc["schema"] = "repro-bench/999"
        with pytest.raises(BenchError, match="schema"):
            validate_schema(doc)

    def test_rejects_missing_cells(self):
        doc = make_report([make_cell()]).to_dict()
        doc["cells"] = []
        with pytest.raises(BenchError, match="no cells"):
            validate_schema(doc)

    def test_rejects_cell_missing_field(self):
        doc = make_report([make_cell()]).to_dict()
        del doc["cells"][0]["wall_seconds"]
        with pytest.raises(BenchError, match="wall_seconds"):
            validate_schema(doc)

    def test_rejects_nonpositive_wall(self):
        doc = make_report([make_cell()]).to_dict()
        doc["cells"][0]["wall_seconds"] = 0
        with pytest.raises(BenchError, match="non-positive"):
            validate_schema(doc)

    def test_rejects_missing_totals(self):
        doc = make_report([make_cell()]).to_dict()
        del doc["totals"]
        with pytest.raises(BenchError, match="totals"):
            validate_schema(doc)

    def test_load_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(BenchError, match="cannot read"):
            load_report(str(path))


class TestCompare:
    def test_speedup_and_geomean(self):
        report = make_report([make_cell(wall=1.0),
                              make_cell(isa="hsail", wall=2.0)])
        baseline = make_report([make_cell(wall=2.0),
                                make_cell(isa="hsail", wall=4.0)]).to_dict()
        geomean, regressions = compare(report, baseline, "BENCH_BASE.json")
        assert geomean == pytest.approx(2.0)
        assert regressions == []
        folded = report.baseline
        assert folded["geomean_speedup"] == 2.0
        assert all(c["speedup"] == 2.0 for c in folded["cells"])

    def test_regression_flagged_beyond_threshold(self):
        report = make_report([make_cell(wall=2.0)])
        baseline = make_report([make_cell(wall=1.0)]).to_dict()
        _, regressions = compare(report, baseline, "b.json", threshold=0.25)
        assert len(regressions) == 1
        assert report.baseline["cells"][0]["regression"] is True

    def test_slower_within_threshold_is_not_a_regression(self):
        report = make_report([make_cell(wall=1.2)])
        baseline = make_report([make_cell(wall=1.0)]).to_dict()
        _, regressions = compare(report, baseline, "b.json", threshold=0.25)
        assert regressions == []

    def test_new_and_missing_cells_never_regress(self):
        report = make_report([make_cell(workload="new")])
        baseline = make_report([make_cell(workload="old")]).to_dict()
        _, regressions = compare(report, baseline, "b.json")
        assert regressions == []
        notes = {c.get("note") for c in report.baseline["cells"]}
        assert "new cell" in notes
        assert "cell missing from current run" in notes

    def test_cycle_drift_is_flagged(self):
        report = make_report([make_cell(cycles=1001)])
        baseline = make_report([make_cell(cycles=1000)]).to_dict()
        compare(report, baseline, "b.json")
        assert report.baseline["cycle_drift"] == ["fft/gcn3[scalar]"]
        assert report.baseline["cells"][0]["cycle_drift"] == {
            "baseline": 1000, "current": 1001}

    def test_identical_cycles_report_no_drift(self):
        report = make_report([make_cell()])
        baseline = make_report([make_cell(wall=3.0)]).to_dict()
        compare(report, baseline, "b.json")
        assert report.baseline["cycle_drift"] == []


class TestNormalizeRss:
    def test_linux_ru_maxrss_is_already_kib(self):
        assert normalize_rss_kb(123_456, "linux") == 123_456

    def test_darwin_ru_maxrss_is_bytes(self):
        assert normalize_rss_kb(123_456 * 1024, "darwin") == 123_456
        assert normalize_rss_kb(2047, "darwin") == 1  # floors, never rounds up

    def test_other_platforms_pass_through(self):
        assert normalize_rss_kb(42, "freebsd14") == 42

    def test_accepts_non_int_raw(self):
        assert normalize_rss_kb(1024.0, "linux") == 1024


class TestRunBench:
    def test_rejects_bad_repeats(self):
        with pytest.raises(BenchError, match="repeats"):
            run_bench(repeats=0)

    def test_tiny_cell_produces_valid_report(self, tmp_path):
        from repro.common.config import small_config
        report = run_bench(workloads=["arraybw"], scale=0.1,
                           config=small_config(2), repeats=1, label="smoke")
        doc = report.to_dict()
        validate_schema(doc)
        assert {(c.workload, c.isa) for c in report.cells} == {
            ("arraybw", "hsail"), ("arraybw", "gcn3")}
        assert all(c.verified for c in report.cells)
        path = str(tmp_path / "BENCH_smoke.json")
        write_report(report, path)
        assert load_report(path)["label"] == "smoke"

    def test_profile_dir_dumps_per_cell_stats(self, tmp_path):
        import pstats

        from repro.common.config import small_config
        profile_dir = tmp_path / "prof"
        run_bench(workloads=["arraybw"], scale=0.1, config=small_config(2),
                  label="prof", profile_dir=str(profile_dir))
        dumps = sorted(p.name for p in profile_dir.glob("*.prof"))
        assert dumps == ["arraybw_gcn3.prof", "arraybw_hsail.prof"]
        stats = pstats.Stats(str(profile_dir / "arraybw_gcn3.prof"))
        assert stats.total_calls > 0  # loadable, non-empty profile


class TestBenchSweep:
    def test_sweep_section_round_trips(self, tmp_path):
        from repro.common.config import small_config
        section = bench_sweep("l1d.size_bytes=8k,32k", ["arraybw"],
                              scale=0.1, config=small_config(2))
        # 2 points x 1 workload x 2 ISAs: one capture per ISA, rest replay
        assert section["points"] == 2
        assert section["captures"] == 2
        assert section["replays"] == 2
        assert section["replay_drift"] == 0
        assert section["cells_identical"] is True
        assert section["execute_wall_seconds"] > 0
        assert section["replay_wall_seconds"] > 0
        assert section["speedup"] > 0
        report = make_report([make_cell()])
        report.sweep = section
        path = str(tmp_path / "BENCH_sweep.json")
        write_report(report, path)
        doc = load_report(path)
        assert doc["sweep"]["captures"] == 2
        assert "sweep replay" in render_text(report)

    def test_best_of_repeats(self):
        from repro.common.config import small_config
        section = bench_sweep("l1d.size_bytes=8k,32k", ["arraybw"],
                              isas=["gcn3"], scale=0.1,
                              config=small_config(2), repeats=2)
        # each repeat starts cold: one capture, one replay per pair
        assert section["repeats"] == 2
        assert section["captures"] == 1
        assert section["replays"] == 1
        assert section["replay_drift"] == 0
        assert section["cells_identical"] is True

    def test_rejects_bad_repeats(self):
        with pytest.raises(BenchError, match="repeats"):
            bench_sweep("l1d.size_bytes=8k,32k", ["arraybw"], repeats=0)


class TestEngineRows:
    def test_schema_carries_engine_per_cell(self):
        """Every cell a bench emits names the engine that produced it,
        so regressions are attributable."""
        report = make_report([make_cell(),
                              make_cell(isa="hsail")])
        doc = report.to_dict()
        validate_schema(doc)
        assert all("engine" in c for c in doc["cells"])
        assert {c["engine"] for c in doc["cells"]} == {"scalar"}

    def test_cell_lookup_can_filter_by_engine(self):
        scalar = make_cell(wall=2.0)
        vector = make_cell(wall=0.5)
        vector.engine = "vector"
        report = make_report([scalar, vector])
        assert report.cell("fft", "gcn3", "vector") is vector
        assert report.cell("fft", "gcn3", "scalar") is scalar
        assert report.cell("fft", "gcn3") is scalar  # first match

    def test_compare_matches_on_engine(self):
        """Scalar and vector rows of the same cell never cross-compare."""
        cur_s, cur_v = make_cell(wall=1.0), make_cell(wall=0.25)
        cur_v.engine = "vector"
        base_s, base_v = make_cell(wall=2.0), make_cell(wall=1.0)
        base_v.engine = "vector"
        report = make_report([cur_s, cur_v])
        baseline = make_report([base_s, base_v]).to_dict()
        geomean, regressions = compare(report, baseline, "b.json")
        assert regressions == []
        by_engine = {c["engine"]: c for c in report.baseline["cells"]}
        assert by_engine["scalar"]["speedup"] == 2.0
        assert by_engine["vector"]["speedup"] == 4.0

    def test_engineless_baseline_defaults_to_scalar(self):
        """Reports written before the engine knob compare against scalar
        rows; vector rows are new cells, never regressions."""
        cur_s, cur_v = make_cell(wall=1.0), make_cell(wall=9.0)
        cur_v.engine = "vector"
        report = make_report([cur_s, cur_v])
        baseline = make_report([make_cell(wall=2.0)]).to_dict()
        for cell in baseline["cells"]:
            del cell["engine"]  # a pre-engine-knob report
        validate_schema(baseline)  # engine stays optional on read
        _, regressions = compare(report, baseline, "b.json")
        assert regressions == []
        cells = report.baseline["cells"]
        assert [c.get("note") for c in cells] == [None, "new cell"]
        assert cells[0]["speedup"] == 2.0

    def test_run_bench_vector_rows(self):
        """engines=("scalar","vector") produces one row per engine with
        identical simulated cycles (the bit-identity invariant) and
        carries the engine through the emitted schema."""
        from repro.common.config import small_config

        report = run_bench(workloads=["arraybw"], scale=0.1,
                           config=small_config(2), repeats=1, label="eng",
                           engines=("scalar", "vector"))
        assert {(c.isa, c.engine) for c in report.cells} == {
            ("hsail", "scalar"), ("gcn3", "scalar"),
            ("hsail", "vector"), ("gcn3", "vector")}
        for isa in ("hsail", "gcn3"):
            scalar = report.cell("arraybw", isa, "scalar")
            vector = report.cell("arraybw", isa, "vector")
            assert scalar.cycles == vector.cycles
            assert scalar.dynamic_instructions == vector.dynamic_instructions
            assert vector.verified  # inherited from the capture run
        doc = report.to_dict()
        validate_schema(doc)
        assert all("engine" in c for c in doc["cells"])

    def test_run_bench_rejects_unknown_engine(self):
        with pytest.raises(BenchError, match="unknown bench engine"):
            run_bench(workloads=["arraybw"], engines=("warp",))

    def test_bench_sweep_records_engine(self):
        from repro.common.config import small_config

        section = bench_sweep("l1d.size_bytes=8k,32k", ["arraybw"],
                              isas=["gcn3"], scale=0.1,
                              config=small_config(2), engine="scalar")
        assert section["engine"] == "scalar"
        assert section["replay_drift"] == 0
        assert section["cells_identical"] is True
