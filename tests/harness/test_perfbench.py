"""Perf-bench harness tests: schema, comparison math, report round-trip.

These run no simulations — they exercise the report/baseline machinery
on synthetic cells so CI can gate on them cheaply.
"""

import json

import pytest

from repro.harness.perfbench import (
    BenchCell,
    BenchError,
    BenchReport,
    compare,
    load_report,
    run_bench,
    validate_schema,
    write_report,
)


def make_cell(workload="fft", isa="gcn3", wall=2.0, cycles=1000):
    return BenchCell(workload=workload, isa=isa, verified=True,
                     wall_seconds=wall, cycles=cycles,
                     dynamic_instructions=500, peak_rss_kb=1)


def make_report(cells):
    return BenchReport(label="test", scale=0.5, seed=7, repeats=1,
                       config_fingerprint="fp", cells=cells,
                       created_unix=1_700_000_000)


class TestSchema:
    def test_roundtrip_through_disk(self, tmp_path):
        report = make_report([make_cell()])
        path = str(tmp_path / "BENCH_test.json")
        write_report(report, path)
        doc = load_report(path)  # validates on load
        assert doc["schema"] == "repro-bench/1"
        assert doc["cells"][0]["workload"] == "fft"
        assert doc["totals"]["geomean_wall_seconds"] == 2.0

    def test_rejects_wrong_schema(self):
        doc = make_report([make_cell()]).to_dict()
        doc["schema"] = "repro-bench/999"
        with pytest.raises(BenchError, match="schema"):
            validate_schema(doc)

    def test_rejects_missing_cells(self):
        doc = make_report([make_cell()]).to_dict()
        doc["cells"] = []
        with pytest.raises(BenchError, match="no cells"):
            validate_schema(doc)

    def test_rejects_cell_missing_field(self):
        doc = make_report([make_cell()]).to_dict()
        del doc["cells"][0]["wall_seconds"]
        with pytest.raises(BenchError, match="wall_seconds"):
            validate_schema(doc)

    def test_rejects_nonpositive_wall(self):
        doc = make_report([make_cell()]).to_dict()
        doc["cells"][0]["wall_seconds"] = 0
        with pytest.raises(BenchError, match="non-positive"):
            validate_schema(doc)

    def test_rejects_missing_totals(self):
        doc = make_report([make_cell()]).to_dict()
        del doc["totals"]
        with pytest.raises(BenchError, match="totals"):
            validate_schema(doc)

    def test_load_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(BenchError, match="cannot read"):
            load_report(str(path))


class TestCompare:
    def test_speedup_and_geomean(self):
        report = make_report([make_cell(wall=1.0),
                              make_cell(isa="hsail", wall=2.0)])
        baseline = make_report([make_cell(wall=2.0),
                                make_cell(isa="hsail", wall=4.0)]).to_dict()
        geomean, regressions = compare(report, baseline, "BENCH_BASE.json")
        assert geomean == pytest.approx(2.0)
        assert regressions == []
        folded = report.baseline
        assert folded["geomean_speedup"] == 2.0
        assert all(c["speedup"] == 2.0 for c in folded["cells"])

    def test_regression_flagged_beyond_threshold(self):
        report = make_report([make_cell(wall=2.0)])
        baseline = make_report([make_cell(wall=1.0)]).to_dict()
        _, regressions = compare(report, baseline, "b.json", threshold=0.25)
        assert len(regressions) == 1
        assert report.baseline["cells"][0]["regression"] is True

    def test_slower_within_threshold_is_not_a_regression(self):
        report = make_report([make_cell(wall=1.2)])
        baseline = make_report([make_cell(wall=1.0)]).to_dict()
        _, regressions = compare(report, baseline, "b.json", threshold=0.25)
        assert regressions == []

    def test_new_and_missing_cells_never_regress(self):
        report = make_report([make_cell(workload="new")])
        baseline = make_report([make_cell(workload="old")]).to_dict()
        _, regressions = compare(report, baseline, "b.json")
        assert regressions == []
        notes = {c.get("note") for c in report.baseline["cells"]}
        assert "new cell" in notes
        assert "cell missing from current run" in notes

    def test_cycle_drift_is_flagged(self):
        report = make_report([make_cell(cycles=1001)])
        baseline = make_report([make_cell(cycles=1000)]).to_dict()
        compare(report, baseline, "b.json")
        assert report.baseline["cycle_drift"] == ["fft/gcn3"]
        assert report.baseline["cells"][0]["cycle_drift"] == {
            "baseline": 1000, "current": 1001}

    def test_identical_cycles_report_no_drift(self):
        report = make_report([make_cell()])
        baseline = make_report([make_cell(wall=3.0)]).to_dict()
        compare(report, baseline, "b.json")
        assert report.baseline["cycle_drift"] == []


class TestRunBench:
    def test_rejects_bad_repeats(self):
        with pytest.raises(BenchError, match="repeats"):
            run_bench(repeats=0)

    def test_tiny_cell_produces_valid_report(self, tmp_path):
        from repro.common.config import small_config
        report = run_bench(workloads=["arraybw"], scale=0.1,
                           config=small_config(2), repeats=1, label="smoke")
        doc = report.to_dict()
        validate_schema(doc)
        assert {(c.workload, c.isa) for c in report.cells} == {
            ("arraybw", "hsail"), ("arraybw", "gcn3")}
        assert all(c.verified for c in report.cells)
        path = str(tmp_path / "BENCH_smoke.json")
        write_report(report, path)
        assert load_report(path)["label"] == "smoke"
