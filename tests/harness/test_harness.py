"""Harness tests: runner caching, figure generators, hardware proxy."""

import pytest

from repro.common.config import small_config
from repro.harness.figures import ALL_FIGURES, DISPLAY
from repro.harness.hardware_model import (
    CorrelationReport,
    _pearson,
    correlate,
    hardware_cycles,
    table07_rows,
)
from repro.core import Session
from repro.harness.runner import run_workload


@pytest.fixture(scope="module")
def mini_suite():
    """A tiny two-workload suite shared by all harness tests."""
    return Session(small_config(2)).suite(scale=0.1,
                                          workloads=["arraybw", "comd"])


class TestRunner:
    def test_run_workload_fields(self):
        run = run_workload("snap", isa="gcn3", scale=0.1,
                           config=small_config(2))
        assert run.verified
        assert run.cycles > 0
        assert run.dynamic_instructions > 0
        assert run.instr_footprint_bytes > 0
        assert run.data_footprint_bytes > 0
        assert run.kernel_code_bytes  # one entry per kernel

    def test_suite_matrix_complete(self, mini_suite):
        assert set(mini_suite.runs) == {
            ("arraybw", "hsail"), ("arraybw", "gcn3"),
            ("comd", "hsail"), ("comd", "gcn3"),
        }
        assert mini_suite.all_verified()

    def test_pair_accessor(self, mini_suite):
        hs, g3 = mini_suite.pair("comd")
        assert hs.isa == "hsail" and g3.isa == "gcn3"
        assert g3.dynamic_instructions > hs.dynamic_instructions

    def test_suite_cached_in_process(self, mini_suite):
        again = Session(small_config(2)).suite(
            scale=0.1, workloads=["arraybw", "comd"])
        assert again is mini_suite


class TestFigures:
    def test_every_generator_produces_rows(self, mini_suite):
        for key, fn in ALL_FIGURES.items():
            title, headers, rows = fn(mini_suite)
            assert title, key
            assert rows, key
            for row in rows:
                assert len(row) == len(headers), (key, row)

    def test_display_names(self):
        assert DISPLAY["arraybw"] == "Array BW"
        assert DISPLAY["xsbench"] == "XSBench"

    def test_fig05_ratio_definition(self, mini_suite):
        _t, _h, rows = ALL_FIGURES["fig05"](mini_suite)
        hs, g3 = mini_suite.pair("arraybw")
        row = next(r for r in rows if r[0] == "Array BW")
        assert row[3] == pytest.approx(
            g3.dynamic_instructions / hs.dynamic_instructions)

    def test_geomean_row_present(self, mini_suite):
        for key in ("fig05", "fig06", "fig11", "fig12"):
            _t, _h, rows = ALL_FIGURES[key](mini_suite)
            assert rows[-1][0] == "GEOMEAN", key


class TestHardwareProxy:
    def test_deterministic(self):
        assert hardware_cycles("comd", 1000) == hardware_cycles("comd", 1000)
        assert hardware_cycles("comd", 1000) != hardware_cycles("fft", 1000)

    def test_scales_with_cycles(self):
        assert hardware_cycles("comd", 2000) == 2 * hardware_cycles("comd", 1000)

    def test_pearson(self):
        assert _pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert _pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        assert _pearson([1.0], [2.0]) == 1.0

    def test_correlate_report(self, mini_suite):
        report = correlate(mini_suite)
        assert isinstance(report, CorrelationReport)
        for isa in ("hsail", "gcn3"):
            assert -1.0 <= report.correlation[isa] <= 1.0
            assert report.mean_abs_error[isa] >= 0.0
            assert set(report.per_workload_error[isa]) == {"arraybw", "comd"}

    def test_table07_rows(self, mini_suite):
        title, headers, rows = table07_rows(mini_suite)
        assert "Table 7" in title
        assert rows[0][0] == "HSAIL" and rows[1][0] == "GCN3"


class TestFailedPairFigures:
    """A failed run must surface as n/a, never a fabricated ratio."""

    @pytest.fixture(scope="class")
    def wounded_suite(self):
        """arraybw intact; comd's GCN3 cell marked failed."""
        from repro.harness.parallel import Job, _failed_run
        from repro.harness.runner import SuiteResults

        good = Session(small_config(2)).suite(scale=0.1,
                                              workloads=["arraybw", "comd"])
        suite = SuiteResults(scale=0.1)
        suite.runs.update(good.runs)
        job = Job.build("comd", "gcn3", 0.1, 7, small_config(2))
        suite.runs[("comd", "gcn3")] = _failed_run(job, "injected crash",
                                                   0.0)
        return suite

    def test_ratio_nan_on_failed_pair(self):
        import math

        from repro.harness.figures import _ratio

        assert math.isnan(_ratio(1.0, 2.0, failed=True))
        assert _ratio(1.0, 2.0) == 0.5
        assert _ratio(1.0, 0.0) == 0.0   # zero denominator, healthy run

    def test_figures_render_na_not_zero(self, wounded_suite):
        import math

        from repro.harness.figures import figure05_dynamic_instructions

        _t, _h, rows = figure05_dynamic_instructions(wounded_suite)
        by_name = {r[0]: r for r in rows}
        assert math.isnan(by_name[DISPLAY.get("comd", "comd")][3])
        assert not math.isnan(by_name[DISPLAY.get("arraybw", "arraybw")][3])

    def test_geomean_row_excludes_failed(self, wounded_suite):
        import math

        from repro.harness.figures import figure05_dynamic_instructions

        clean = Session(small_config(2)).suite(scale=0.1,
                                               workloads=["arraybw"])
        wounded_geo = figure05_dynamic_instructions(wounded_suite)[2][-1][3]
        clean_geo = figure05_dynamic_instructions(clean)[2][-1][3]
        assert not math.isnan(wounded_geo)
        assert wounded_geo == pytest.approx(clean_geo)

    def test_summary_skips_failed_pairs(self, wounded_suite):
        from repro.harness.figures import figure01_summary

        rows = figure01_summary(wounded_suite)[2]
        # Ratios equal the arraybw-only summary: comd contributed nothing.
        clean = Session(small_config(2)).suite(scale=0.1,
                                               workloads=["arraybw"])
        clean_rows = figure01_summary(clean)[2]
        assert [r[1] for r in rows] == [r[1] for r in clean_rows]

    def test_all_figures_survive_failed_pair(self, wounded_suite):
        for fn in ALL_FIGURES.values():
            fn(wounded_suite)   # must not raise

    def test_na_rendering(self):
        from repro.common.tables import format_value

        assert format_value(float("nan")) == "n/a"
