"""Report rendering and CLI tests."""

import io

import pytest

from repro.common.config import small_config
from repro.harness.report import figure_with_bars, render_bars, write_report
from repro.core import Session
from repro.__main__ import build_parser, main


@pytest.fixture(scope="module")
def mini_suite():
    return Session(small_config(2)).suite(scale=0.1,
                                          workloads=["arraybw", "snap"])


class TestBars:
    def test_bar_lengths_scale(self):
        text = render_bars(["a", "b"], [1.0, 2.0])
        line_a, line_b = text.splitlines()
        assert line_b.count("#") > line_a.count("#")

    def test_reference_line_marked(self):
        text = render_bars(["x"], [0.5], reference=1.0)
        assert "|" in text

    def test_values_printed(self):
        text = render_bars(["x"], [1.23])
        assert "1.23" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_title(self):
        assert render_bars([], [], title="T").startswith("T")


class TestReport:
    def test_full_report_contains_every_figure(self, mini_suite):
        out = io.StringIO()
        write_report(mini_suite, out)
        text = out.getvalue()
        for fragment in ("Figure 1", "Figure 5", "Figure 9", "Table 6",
                         "Table 7", "all verified"):
            assert fragment in text

    def test_subset_keys(self, mini_suite):
        out = io.StringIO()
        write_report(mini_suite, out, keys=["fig09"])
        text = out.getvalue()
        assert "Figure 9" in text
        assert "Figure 5" not in text

    def test_figure_with_bars_shape(self, mini_suite):
        from repro.harness.figures import figure09_ib_flushes

        text = figure_with_bars(figure09_ib_flushes(mini_suite))
        assert "#" in text or "0.00" in text


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "-w", "snap", "-i", "gcn3"])
        assert args.workload == "snap"
        args = parser.parse_args(["figures", "--only", "fig09"])
        assert args.only == "fig09"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "arraybw" in out and "xsbench" in out

    def test_run_command(self, capsys):
        code = main(["run", "-w", "snap", "-s", "0.1", "--cus", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "HSAIL" in out and "GCN3" in out

    def test_disasm_command(self, capsys):
        code = main(["disasm", "-w", "spmv", "-i", "gcn3", "-s", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "s_endpgm" in out

    def test_disasm_unknown_kernel(self, capsys):
        code = main(["disasm", "-w", "spmv", "-k", "nope", "-s", "0.1"])
        assert code == 2

    def test_figures_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        code = main(["figures", "-s", "0.1", "--only", "fig09",
                     "-o", str(target)])
        assert code == 0
        assert "Figure 9" in target.read_text()


class TestJsonExport:
    def test_suite_to_json(self, mini_suite):
        import json

        payload = json.loads(mini_suite.to_json())
        assert len(payload["runs"]) == 4
        run = payload["runs"][0]
        assert run["verified"] is True
        assert "cycles" in run["stats"]
        assert run["instr_footprint_bytes"] > 0

    def test_cli_figures_json(self, capsys):
        import json

        code = main(["figures", "-s", "0.1", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["scale"] == 0.1


class TestSweepCli:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "-a", "l1i.size_bytes=8k,16k,32k", "-w", "lulesh",
             "-j", "4"])
        assert args.axis == ["l1i.size_bytes=8k,16k,32k"]
        assert args.mode == "grid"
        assert args.report == "all"
        assert args.response == "ratio:ifetch_misses"
        assert args.resume is None

    def test_parser_resume_forms(self):
        parser = build_parser()
        assert parser.parse_args(
            ["sweep", "-a", "x=1", "--resume"]).resume is True
        assert parser.parse_args(
            ["sweep", "-a", "x=1", "--resume", "abc123def456"]
        ).resume == "abc123def456"

    def test_dry_run_lists_points(self, capsys):
        code = main(["sweep", "-a", "l1i.size_bytes=8k,16k", "--cus", "2",
                     "-w", "lulesh", "--dry-run"])
        out = capsys.readouterr().out
        assert code == 0
        assert "l1i.size_bytes=8192" in out
        assert "l1i.size_bytes=16384" in out
        assert "sweep id:" in out
        assert "no cells simulated" in out

    def test_dry_run_flags_invalid_points(self, capsys):
        code = main(["sweep", "-a", "l1i.size_bytes=8k,100", "--cus", "2",
                     "--dry-run"])
        captured = capsys.readouterr()
        assert code == 1
        assert "INVALID" in captured.out

    def test_bad_axis_spec_is_an_error(self, capsys):
        code = main(["sweep", "-a", "no_equals_sign", "--dry-run"])
        assert code == 2
        assert "bad axis spec" in capsys.readouterr().err

    def test_tiny_sweep_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SWEEPS_DIR", raising=False)
        argv = ["sweep", "-a", "cu.vrf_banks=2,4", "--cus", "2",
                "-w", "arraybw", "-s", "0.1", "--quiet"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "2 point(s), 0 from journal, 0 failed" in captured.err
        assert "Tornado" in captured.out
        # Same command with --resume replays everything from the journal.
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "2 from journal" in captured.err

    def test_sweep_csv_output_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SWEEPS_DIR", raising=False)
        target = tmp_path / "sweep.csv"
        assert main(["sweep", "-a", "cu.vrf_banks=2,4", "--cus", "2",
                     "-w", "arraybw", "-s", "0.1", "--quiet",
                     "-f", "csv", "-o", str(target)]) == 0
        capsys.readouterr()
        lines = target.read_text().strip().splitlines()
        assert lines[0].startswith("point_id,workload,status")
        assert len(lines) == 3


class TestCachePruneCli:
    def test_prune_flag(self, tmp_path, capsys):
        code = main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-older-than", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 0 entrie(s)" in out

    def test_breakdown_listed(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_SWEEPS_DIR", raising=False)
        assert main(["sweep", "-a", "cu.vrf_banks=2,4", "--cus", "2",
                     "-w", "arraybw", "-s", "0.1", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-config usage" in out
        assert "entries:" in out
