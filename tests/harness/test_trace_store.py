"""Trace store + capture/replay runner: fingerprints, recovery, identity."""

import pytest

from repro.common.config import small_config
from repro.common.errors import ReproError
from repro.harness.cache import (
    TraceStore,
    resolve_trace_store,
    trace_fingerprint,
)
from repro.harness.runner import ISAS, clear_suite_cache, run_workload
from repro.timing.replay import ExecTrace
from repro.workloads import all_workloads


@pytest.fixture()
def store(tmp_path):
    return TraceStore(tmp_path / "traces")


def _capture(store, workload="arraybw", isa="gcn3", scale=0.1, config=None):
    return run_workload(workload, isa, scale=scale,
                        config=config or small_config(2),
                        execution="capture", trace_store=store)


def _strip(run):
    """A run's payload minus the fields allowed to differ across modes."""
    payload = run.to_payload()
    payload.pop("wall_seconds", None)
    payload.pop("execution", None)
    return payload


class TestTraceFingerprint:
    def test_timing_only_axes_share_a_fingerprint(self):
        base = small_config(2)
        # cache geometry and VRF banking never change the dynamic stream
        timing = base.with_overrides({"l1d.size_bytes": 1 << 17,
                                      "cu.vrf_banks": 8})
        a = trace_fingerprint(base, "arraybw", "gcn3", 0.1, 7)
        b = trace_fingerprint(timing, "arraybw", "gcn3", 0.1, 7)
        assert a == b

    def test_functional_axes_split_fingerprints(self):
        base = small_config(2)
        narrow = base.with_overrides({"cu.simd_width": 8})
        assert (trace_fingerprint(base, "arraybw", "gcn3", 0.1, 7)
                != trace_fingerprint(narrow, "arraybw", "gcn3", 0.1, 7))

    def test_workload_isa_scale_seed_all_matter(self):
        cfg = small_config(2)
        base = trace_fingerprint(cfg, "arraybw", "gcn3", 0.1, 7)
        assert base != trace_fingerprint(cfg, "comd", "gcn3", 0.1, 7)
        assert base != trace_fingerprint(cfg, "arraybw", "hsail", 0.1, 7)
        assert base != trace_fingerprint(cfg, "arraybw", "gcn3", 0.2, 7)
        assert base != trace_fingerprint(cfg, "arraybw", "gcn3", 0.1, 8)

    def test_functional_vs_timing_fingerprint_split(self):
        base = small_config(2)
        timing = base.with_overrides({"l1d.size_bytes": 1 << 17})
        assert base.functional_fingerprint() == timing.functional_fingerprint()
        assert base.timing_fingerprint() != timing.timing_fingerprint()
        assert base.fingerprint() != timing.fingerprint()

    def test_fingerprint_is_memoized(self):
        cfg = small_config(2)
        assert cfg.fingerprint() is cfg.fingerprint()


class TestTraceStore:
    def test_roundtrip(self, store):
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        assert not store.has(fp)
        assert store.get(fp) is None
        _capture(store)
        assert store.has(fp)
        trace = store.get(fp)
        assert isinstance(trace, ExecTrace)
        assert trace.verified
        assert trace.meta["workload"] == "arraybw"
        assert store.stats()["hits"] == 1

    def test_corrupt_trace_discarded_and_recaptured(self, store):
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        path = store._path(fp)
        path.write_bytes(b"not a trace at all")
        assert store.get(fp) is None          # corrupt -> miss
        assert not path.exists()              # and discarded
        _capture(store)                       # self-heals
        assert store.get(fp) is not None

    def test_truncated_trace_is_a_miss(self, store):
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        path = store._path(fp)
        path.write_bytes(path.read_bytes()[:-16])   # torn write
        assert store.get(fp) is None
        assert not path.exists()

    def test_clear(self, store):
        _capture(store)
        assert store.clear() == 1
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        assert not store.has(fp)

    def test_unwritable_directory_degrades(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        broken = TraceStore(blocker / "traces")
        run = _capture(broken)               # capture still succeeds
        assert run.error is None and run.verified

    def test_resolve_env_disable(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_trace_store(None) is None
        # an explicit directory always wins over the env kill-switch
        explicit = resolve_trace_store(str(tmp_path / "traces"))
        assert isinstance(explicit, TraceStore)


class TestBlobSyncAndMaintenance:
    """The raw-bytes surface distributed workers sync over, plus the
    ``repro cache`` maintenance entry points."""

    def test_blob_round_trip_between_stores(self, store, tmp_path):
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        blob = store.read_blob(fp)
        assert blob is not None and blob.startswith(b"RPROTRC1")
        other = TraceStore(tmp_path / "other")
        assert other.write_blob(fp, blob) is True
        assert other.has(fp)
        assert isinstance(other.get(fp), ExecTrace)

    def test_read_blob_miss_is_none(self, store):
        assert store.read_blob("0" * 16) is None

    def test_corrupt_blob_refused_never_poisons(self, store):
        assert store.write_blob("deadbeef", b"not a trace") is False
        assert not store.has("deadbeef")

    def test_truncated_blob_refused(self, store):
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        blob = store.read_blob(fp)
        assert store.write_blob("feedface", blob[:-16]) is False
        assert not store.has("feedface")

    def test_prune_older_than_removes_stale_traces(self, store):
        import os
        import time

        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        path = store._path(fp)
        stale = time.time() - 10 * 86400
        os.utime(path, (stale, stale))
        removed, freed = store.prune_older_than(5.0)
        assert removed == 1 and freed > 0
        assert not store.has(fp)

    def test_prune_keeps_young_traces(self, store):
        _capture(store)
        assert store.prune_older_than(1.0) == (0, 0)
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        assert store.has(fp)

    def test_breakdown_keys_by_fingerprint(self, store):
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        usage = store.breakdown()
        assert fp in usage
        assert usage[fp]["entries"] == 1
        assert usage[fp]["bytes"] > 0


class TestTraceMemoLRU:
    """The in-process parsed-trace memo is LRU-bounded so a long-lived
    daemon crossing many fingerprints cannot grow without limit."""

    def _seed(self, store, count):
        from repro.harness import cache as cache_mod

        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        _capture(store)
        blob = store.read_blob(fp)
        fps = [f"f{i:015x}" for i in range(count)]
        for fake in fps:
            assert store.write_blob(fake, blob)
        cache_mod.clear_trace_memo()
        return fps

    def test_memo_never_exceeds_the_bound(self, store, monkeypatch):
        from repro.harness.cache import _LOADED_TRACES

        monkeypatch.setenv("REPRO_TRACE_MEMO", "3")
        fps = self._seed(store, 5)
        for fp in fps:
            assert isinstance(store.get(fp), ExecTrace)
            assert len(_LOADED_TRACES) <= 3
        # oldest entries were evicted, newest retained
        kept = {key.rsplit("/", 1)[-1] for key in _LOADED_TRACES}
        assert kept == {f"{fp}.trace" for fp in fps[-3:]}

    def test_hit_refreshes_lru_position(self, store, monkeypatch):
        from repro.harness.cache import _LOADED_TRACES

        monkeypatch.setenv("REPRO_TRACE_MEMO", "2")
        fps = self._seed(store, 3)
        store.get(fps[0])
        store.get(fps[1])
        store.get(fps[0])            # refresh: fps[0] is now the newest
        store.get(fps[2])            # evicts fps[1], not fps[0]
        kept = {key.rsplit("/", 1)[-1] for key in _LOADED_TRACES}
        assert kept == {f"{fps[0]}.trace", f"{fps[2]}.trace"}

    def test_zero_cap_disables_memoization(self, store, monkeypatch):
        from repro.harness.cache import _LOADED_TRACES

        monkeypatch.setenv("REPRO_TRACE_MEMO", "0")
        fps = self._seed(store, 1)
        assert isinstance(store.get(fps[0]), ExecTrace)
        assert not _LOADED_TRACES

    def test_clear_suite_cache_evicts_the_memo(self, store):
        from repro.harness.cache import _LOADED_TRACES

        fps = self._seed(store, 1)
        store.get(fps[0])
        assert _LOADED_TRACES
        clear_suite_cache()
        assert not _LOADED_TRACES


class TestCaptureReplayIdentity:
    def test_full_matrix_bit_identity(self, store):
        """Replay must be bit-identical to execute-at-issue on every
        workload x ISA cell — every counter, ratio, and distribution."""
        cfg = small_config(2)
        clear_suite_cache()
        for wl in all_workloads():
            for isa in ISAS:
                cap = run_workload(wl.name, isa, scale=0.1, config=cfg,
                                   execution="capture", trace_store=store)
                rep = run_workload(wl.name, isa, scale=0.1, config=cfg,
                                   execution="replay", trace_store=store)
                assert cap.execution == "capture"
                assert rep.execution == "replay"
                assert _strip(cap) == _strip(rep), f"{wl.name}/{isa}"

    def test_distributions_survive_replay(self, store):
        cap = _capture(store, workload="fft")
        rep = run_workload("fft", "gcn3", scale=0.1, config=small_config(2),
                           execution="replay", trace_store=store)
        snap_c, snap_r = cap.total.snapshot(), rep.total.snapshot()
        assert snap_c == snap_r
        # the sampled VRF probes are replayed, not recomputed
        assert (rep.total.read_uniqueness.numerator
                == cap.total.read_uniqueness.numerator)

    def test_replay_preserves_run_metadata(self, store):
        cap = _capture(store)
        rep = run_workload("arraybw", "gcn3", scale=0.1,
                           config=small_config(2),
                           execution="replay", trace_store=store)
        assert rep.data_footprint_bytes == cap.data_footprint_bytes
        assert rep.static_instructions == cap.static_instructions
        assert rep.kernel_code_bytes == cap.kernel_code_bytes
        assert rep.verified == cap.verified

    def test_replay_across_timing_config(self, store):
        """A trace captured under one timing config replays under another
        (same functional fingerprint) and matches that config's own
        execute-at-issue statistics."""
        base = small_config(2)
        timing = base.with_overrides({"l1d.size_bytes": 1 << 17})
        _capture(store, config=base)
        rep = run_workload("arraybw", "gcn3", scale=0.1, config=timing,
                           execution="replay", trace_store=store)
        ref = run_workload("arraybw", "gcn3", scale=0.1, config=timing)
        assert _strip(rep) == _strip(ref)

    def test_replay_twice_hits_the_staging_memo(self, store):
        _capture(store)
        first = run_workload("arraybw", "gcn3", scale=0.1,
                             config=small_config(2),
                             execution="replay", trace_store=store)
        second = run_workload("arraybw", "gcn3", scale=0.1,
                              config=small_config(2),
                              execution="replay", trace_store=store)
        assert _strip(first) == _strip(second)


class TestExecutionModes:
    def test_strict_replay_missing_trace_raises(self, store):
        with pytest.raises(ReproError, match="no captured trace"):
            run_workload("arraybw", "gcn3", scale=0.1,
                         config=small_config(2),
                         execution="replay", trace_store=store)

    def test_auto_captures_then_replays(self, store):
        first = run_workload("arraybw", "gcn3", scale=0.1,
                             config=small_config(2),
                             execution="auto", trace_store=store)
        second = run_workload("arraybw", "gcn3", scale=0.1,
                              config=small_config(2),
                              execution="auto", trace_store=store)
        assert first.execution == "capture"
        assert second.execution == "replay"
        assert _strip(first) == _strip(second)

    def test_auto_without_store_degrades_to_execute(self):
        run = run_workload("arraybw", "gcn3", scale=0.1,
                           config=small_config(2), execution="auto",
                           trace_store=None)
        assert run.execution == "execute"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="execution mode"):
            run_workload("arraybw", "gcn3", scale=0.1,
                         config=small_config(2), execution="warp")

    def test_payload_byte_compat(self, store):
        """Executed runs serialize exactly as before the replay subsystem
        (golden files and the disk cache depend on it)."""
        run = run_workload("arraybw", "gcn3", scale=0.1,
                           config=small_config(2))
        assert "execution" not in run.to_payload()
        assert "execution" not in run.to_dict()
        rep_payload = _capture(store).to_payload()
        assert rep_payload["execution"] == "capture"
