"""Suite-diff tool tests."""

import copy

import pytest

from repro.harness.diffing import Delta, diff_payloads


def make_payload():
    return {
        "scale": 0.5,
        "runs": [
            {
                "workload": "snap", "isa": "gcn3", "verified": True,
                "stats": {"cycles": 1000, "dynamic_instructions": 500,
                          "ib_flushes": 10, "vrf_bank_conflicts": 100,
                          "simd_utilization": 0.9},
                "data_footprint_bytes": 4096,
                "instr_footprint_bytes": 400,
                "static_instructions": 80,
            },
            {
                "workload": "snap", "isa": "hsail", "verified": True,
                "stats": {"cycles": 1200, "dynamic_instructions": 300,
                          "ib_flushes": 30, "vrf_bank_conflicts": 120,
                          "simd_utilization": 0.9},
                "data_footprint_bytes": 4096,
                "instr_footprint_bytes": 320,
                "static_instructions": 40,
            },
        ],
    }


class TestDiff:
    def test_identical_payloads_clean(self):
        a = make_payload()
        assert diff_payloads(a, copy.deepcopy(a)) == []

    def test_cycle_drift_above_threshold_flagged(self):
        a, b = make_payload(), make_payload()
        b["runs"][0]["stats"]["cycles"] = 1100  # +10% > 2%
        deltas = diff_payloads(a, b)
        assert any(d.stat == "cycles" and d.isa == "gcn3" for d in deltas)

    def test_small_cycle_jitter_ignored(self):
        a, b = make_payload(), make_payload()
        b["runs"][0]["stats"]["cycles"] = 1010  # +1% < 2%
        assert diff_payloads(a, b) == []

    def test_any_instruction_change_flagged(self):
        a, b = make_payload(), make_payload()
        b["runs"][1]["stats"]["dynamic_instructions"] = 301
        deltas = diff_payloads(a, b)
        assert any(d.stat == "dynamic_instructions" for d in deltas)

    def test_verification_flip_flagged(self):
        a, b = make_payload(), make_payload()
        b["runs"][0]["verified"] = False
        deltas = diff_payloads(a, b)
        assert any(d.stat == "verified" for d in deltas)

    def test_added_and_removed_runs(self):
        a, b = make_payload(), make_payload()
        b["runs"].pop()
        deltas = diff_payloads(a, b)
        assert any(d.stat == "run-removed" for d in deltas)
        deltas = diff_payloads(b, a)
        assert any(d.stat == "run-added" for d in deltas)

    def test_render(self):
        d = Delta("snap", "gcn3", "cycles", 1000, 1100)
        text = d.render()
        assert "snap/gcn3" in text and "+10.0%" in text

    def test_cli_diff_detects_change(self, tmp_path):
        import json

        from repro.__main__ import main

        a, b = make_payload(), make_payload()
        b["runs"][0]["stats"]["ib_flushes"] = 99
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(a))
        pb.write_text(json.dumps(b))
        assert main(["diff", str(pa), str(pa)]) == 0
        assert main(["diff", str(pa), str(pb)]) == 1
