"""On-disk result cache: fingerprints, round-trips, corruption recovery."""

import json

import pytest

from repro.common.config import CuConfig, paper_config, small_config
from repro.harness.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    job_fingerprint,
    resolve_cache,
    source_tree_stamp,
)
from repro.harness.runner import run_workload


@pytest.fixture(scope="module")
def tiny_run():
    return run_workload("arraybw", "gcn3", scale=0.1, config=small_config(2))


class TestConfigFingerprint:
    def test_stable_across_instances(self):
        assert paper_config().fingerprint() == paper_config().fingerprint()

    def test_differs_across_configs(self):
        assert small_config(2).fingerprint() != small_config(4).fingerprint()
        assert small_config(2).fingerprint() != paper_config().fingerprint()

    def test_nested_field_changes_hash(self):
        base = small_config(2)
        tweaked = base.scaled(cu=CuConfig(vrf_banks=8))
        assert base.fingerprint() != tweaked.fingerprint()

    def test_is_short_hex(self):
        fp = paper_config().fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # raises if not hex


class TestJobFingerprint:
    def test_every_component_matters(self):
        base = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        assert base != job_fingerprint(small_config(4), "arraybw", "gcn3", 0.1, 7)
        assert base != job_fingerprint(small_config(2), "comd", "gcn3", 0.1, 7)
        assert base != job_fingerprint(small_config(2), "arraybw", "hsail", 0.1, 7)
        assert base != job_fingerprint(small_config(2), "arraybw", "gcn3", 0.2, 7)
        assert base != job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 8)

    def test_repeatable(self):
        a = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        b = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        assert a == b

    def test_source_stamp_is_folded_in(self):
        # The stamp is process-cached, so just check it is a stable hex id.
        assert source_tree_stamp() == source_tree_stamp()
        int(source_tree_stamp(), 16)


class TestResultCache:
    def test_roundtrip_preserves_everything(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path / "cache")
        key = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        assert cache.get(key) is None          # cold
        assert cache.put(key, tiny_run)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.to_payload() == tiny_run.to_payload()
        assert loaded.total.snapshot() == tiny_run.total.snapshot()
        assert loaded.dispatch_kernel_names == tiny_run.dispatch_kernel_names
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert cache.stats()["misses"] == 1

    def test_truncated_entry_treated_as_miss_and_rewritten(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path / "cache")
        key = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        cache.put(key, tiny_run)
        path = cache._path(key)
        path.write_text(path.read_text()[: 40])   # simulate a torn write
        assert cache.get(key) is None              # corrupt -> miss
        assert not path.exists()                   # and discarded
        assert cache.put(key, tiny_run)            # rewrite works
        assert cache.get(key).to_payload() == tiny_run.to_payload()

    def test_garbage_json_treated_as_miss(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path / "cache")
        key = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        cache.put(key, tiny_run)
        cache._path(key).write_text('{"format": 1, "run": {"nope": true}}')
        assert cache.get(key) is None

    def test_stale_format_version_is_a_miss(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path / "cache")
        key = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        cache.put(key, tiny_run)
        entry = json.loads(cache._path(key).read_text())
        entry["format"] = CACHE_FORMAT_VERSION + 1
        cache._path(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_unwritable_directory_degrades_silently(self, tmp_path, tiny_run):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "cache")    # mkdir will fail
        key = "f" * 64
        assert cache.put(key, tiny_run) is False
        assert cache.get(key) is None

    def test_clear_removes_entries(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path / "cache")
        for key in ("a" * 64, "b" * 64):
            cache.put(key, tiny_run)
        assert cache.clear() == 2
        assert cache.get("a" * 64) is None


class TestResolveCache:
    def test_default_enabled(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = resolve_cache(None, str(tmp_path))
        assert isinstance(cache, ResultCache)

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_cache(None, None) is None

    def test_explicit_true_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert isinstance(resolve_cache(True, str(tmp_path)), ResultCache)

    def test_explicit_false(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert resolve_cache(False, None) is None

    def test_env_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        cache = resolve_cache(True, None)
        assert cache.directory == tmp_path / "elsewhere"


class TestPruneAndBreakdown:
    def _fill(self, tmp_path, tiny_run, n=3):
        cache = ResultCache(tmp_path / "cache")
        keys = [job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, s)
                for s in range(n)]
        for key in keys:
            cache.put(key, tiny_run,
                      config_fingerprint=small_config(2).fingerprint())
        return cache, keys

    def test_prune_nothing_when_young(self, tmp_path, tiny_run):
        cache, keys = self._fill(tmp_path, tiny_run)
        assert cache.prune_older_than(1.0) == (0, 0)
        assert all(cache.get(k) is not None for k in keys)

    def test_prune_removes_old_entries(self, tmp_path, tiny_run):
        import os
        cache, keys = self._fill(tmp_path, tiny_run)
        old = cache._path(keys[0])
        stale = old.stat().st_mtime - 10 * 86400
        os.utime(old, (stale, stale))
        removed, freed = cache.prune_older_than(5.0)
        assert removed == 1
        assert freed > 0
        assert cache.get(keys[0]) is None
        assert all(cache.get(k) is not None for k in keys[1:])

    def test_prune_empty_directory(self, tmp_path):
        assert ResultCache(tmp_path / "void").prune_older_than(0.0) == (0, 0)

    def test_breakdown_groups_by_config(self, tmp_path, tiny_run):
        cache, _keys = self._fill(tmp_path, tiny_run)
        other = job_fingerprint(small_config(4), "arraybw", "gcn3", 0.1, 7)
        cache.put(other, tiny_run,
                  config_fingerprint=small_config(4).fingerprint())
        usage = cache.breakdown()
        assert usage[small_config(2).fingerprint()]["entries"] == 3
        assert usage[small_config(4).fingerprint()]["entries"] == 1
        assert all(b["bytes"] > 0 for b in usage.values())

    def test_breakdown_legacy_entries_unknown(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path / "cache")
        key = job_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        cache.put(key, tiny_run)   # no config fingerprint recorded
        assert cache.breakdown() == {
            "(unknown)": {"entries": 1,
                          "bytes": cache._path(key).stat().st_size}
        }
