"""Golden-stats regression tests.

``tests/golden/suite_small.json`` pins the exact statistics of a small,
fast (workload x ISA) suite.  Any change to the compiler, finalizer,
timing model, or harness that moves a single counter fails here first —
and because both the serial and the process-pool paths are checked
against the same golden file, it is also the proof that ``jobs=N``
reproduces the serial statistics bit for bit.

Regenerating after an *intentional* model change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/harness/test_golden.py -q

then commit the updated ``tests/golden/suite_small.json`` and explain the
stat movement in the PR description.
"""

import json
import os
from pathlib import Path

import pytest

from repro.common.config import small_config
from repro.core import Session

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "suite_small.json"

WORKLOADS = ("arraybw", "comd", "bitonic")
SCALE = 0.1
SEED = 7


def _capture(jobs: int) -> dict:
    """The golden payload for the pinned suite, wall-clock excluded."""
    results = Session(small_config(2)).suite(
        scale=SCALE,
        workloads=list(WORKLOADS),
        seed=SEED,
        use_cache=False,        # golden must reflect a real simulation,
        use_disk_cache=False,   # never a cache read
        jobs=jobs,
    )
    runs = {}
    for (workload, isa), run in sorted(results.runs.items()):
        payload = run.to_payload()
        del payload["wall_seconds"]   # the one nondeterministic field
        runs[f"{workload}/{isa}"] = payload
    payload = {
        "config_fingerprint": small_config(2).fingerprint(),
        "scale": SCALE,
        "seed": SEED,
        "workloads": list(WORKLOADS),
        "runs": runs,
    }
    # Round-trip through JSON so float formatting and key types match a
    # file read exactly.
    return json.loads(json.dumps(payload, sort_keys=True))


@pytest.fixture(scope="module")
def serial_capture():
    return _capture(jobs=1)


def test_golden_file_up_to_date(serial_capture):
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(serial_capture, indent=2, sort_keys=True) + "\n"
        )
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    if golden["config_fingerprint"] != serial_capture["config_fingerprint"]:
        pytest.fail(
            "GpuConfig changed shape/defaults since the golden file was "
            "written - rerun with REPRO_UPDATE_GOLDEN=1 if intentional"
        )
    assert serial_capture == golden, (
        "simulation statistics drifted from tests/golden/suite_small.json; "
        "if the model change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and justify the movement in the PR"
    )


def test_parallel_path_matches_golden(serial_capture):
    """jobs=3 must reproduce the pinned stats exactly, not just jobs=1."""
    assert _capture(jobs=3) == serial_capture


def test_golden_runs_all_verified():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert len(golden["runs"]) == 2 * len(WORKLOADS)
    for name, run in golden["runs"].items():
        assert run["verified"] is True, name
        assert run["error"] is None, name
        assert run["total"]["counters"]["cycles"] > 0, name
