"""Parallel fan-out: determinism vs the serial path, failure isolation."""

import multiprocessing
import os
import time

import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.harness.parallel import Job, JobEvent, resolve_jobs, run_job_inline, run_jobs
from repro.harness.runner import run_workload

WORKLOADS = ["arraybw", "comd", "bitonic"]
SCALE = 0.1
SEED = 7


def _jobs(workloads=WORKLOADS, isas=("hsail", "gcn3"), config=None):
    config = config or small_config(2)
    return [Job.build(w, isa, SCALE, SEED, config)
            for w in workloads for isa in isas]


# ---- failure-injection worker functions ------------------------------------
# Module-level so the process pool can pickle them.

def _exec_raise_on_comd(job):
    from repro.harness.parallel import execute_job

    if job.workload == "comd":
        raise RuntimeError("injected failure for comd")
    return execute_job(job)


def _exec_sleep_forever(job):
    time.sleep(600)


def _exec_die_in_worker(job):
    """Hard-crash the worker process; succeed when retried in the parent."""
    from repro.harness.parallel import execute_job

    if multiprocessing.parent_process() is not None:
        os._exit(3)   # simulates a segfault/OOM-kill: no exception, no result
    return execute_job(job)


class TestDeterminism:
    """jobs=N must be stat-identical to the serial path, cell for cell."""

    @pytest.fixture(scope="class")
    def serial(self):
        return Session(small_config(2)).suite(
            scale=SCALE, workloads=WORKLOADS, seed=SEED,
            use_cache=False, jobs=1)

    @pytest.fixture(scope="class")
    def pooled(self):
        return Session(small_config(2)).suite(
            scale=SCALE, workloads=WORKLOADS, seed=SEED,
            use_cache=False, jobs=4)

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_statsets_identical(self, serial, pooled, workload, isa):
        s = serial.get(workload, isa)
        p = pooled.get(workload, isa)
        assert s.total.to_payload() == p.total.to_payload()
        assert s.total.snapshot() == p.total.snapshot()
        assert [d.to_payload() for d in s.per_dispatch] == \
               [d.to_payload() for d in p.per_dispatch]

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_dispatch_order_and_footprints_identical(self, serial, pooled,
                                                     workload, isa):
        s = serial.get(workload, isa)
        p = pooled.get(workload, isa)
        assert s.dispatch_kernel_names == p.dispatch_kernel_names
        assert s.data_footprint_bytes == p.data_footprint_bytes
        assert s.instr_footprint_bytes == p.instr_footprint_bytes
        assert s.static_instructions == p.static_instructions
        assert s.kernel_code_bytes == p.kernel_code_bytes
        assert s.verified and p.verified

    def test_matrix_insertion_order_identical(self, serial, pooled):
        assert list(serial.runs) == list(pooled.runs)

    def test_roundtrip_through_payload_is_lossless(self):
        from repro.harness.runner import WorkloadRun

        run = run_workload("spmv", "hsail", scale=SCALE, config=small_config(2))
        again = WorkloadRun.from_payload(run.to_payload())
        assert again.to_payload() == run.to_payload()
        assert again.total.snapshot() == run.total.snapshot()


class TestSuiteCacheKey:
    def test_different_configs_do_not_collide(self):
        """Regression: the in-process suite memo used to ignore the config,
        so a second call with a *different* GpuConfig returned the first
        config's stale results."""
        from dataclasses import replace

        base = small_config(2)
        slower = base.scaled(cu=replace(base.cu, valu_issue_cycles=8))
        a = Session(base).suite(scale=SCALE, workloads=["arraybw"], seed=SEED)
        b = Session(slower).suite(scale=SCALE, workloads=["arraybw"], seed=SEED)
        assert a is not b
        # Doubling VALU issue latency must show up in cycles; identical
        # results would mean the second call was served the stale matrix.
        assert a.get("arraybw", "gcn3").cycles < b.get("arraybw", "gcn3").cycles

    def test_same_config_still_memoized(self):
        a = Session(small_config(2)).suite(scale=SCALE, workloads=["arraybw"],
                                           seed=SEED)
        b = Session(small_config(2)).suite(scale=SCALE, workloads=["arraybw"],
                                           seed=SEED)
        assert a is b


class TestFailureIsolation:
    def test_raising_worker_marks_run_failed(self):
        results = run_jobs(_jobs(), max_workers=2, execute=_exec_raise_on_comd)
        assert len(results) == 6
        for (workload, _isa), run in results.items():
            if workload == "comd":
                assert run.error is not None
                assert "injected failure for comd" in run.error
                assert not run.verified
            else:
                assert run.error is None
                assert run.verified

    def test_timeout_marks_run_failed_without_hanging(self):
        start = time.monotonic()
        results = run_jobs(_jobs(["arraybw"]), max_workers=2,
                           timeout=0.5, execute=_exec_sleep_forever)
        elapsed = time.monotonic() - start
        assert elapsed < 30, "suite hung on a stuck worker"
        assert len(results) == 2
        for run in results.values():
            assert run.error is not None and "timed out" in run.error

    def test_dead_worker_retried_inline(self):
        results = run_jobs(_jobs(["arraybw"]), max_workers=1,
                           execute=_exec_die_in_worker)
        assert len(results) == 2
        for run in results.values():
            assert run.error is None, run.error
            assert run.verified

    def test_inline_capture_never_raises(self):
        run = run_job_inline(Job.build("no-such-workload", "gcn3", SCALE,
                                       SEED, small_config(2)))
        assert run.error is not None
        assert not run.verified
        assert run.per_dispatch == []

    def test_run_suite_survives_bad_workload(self, tmp_path):
        results = Session(small_config(2)).suite(
            scale=SCALE, workloads=["arraybw", "no-such-workload"],
            use_cache=False, jobs=1)
        assert results.get("arraybw", "gcn3").verified
        failed = results.get("no-such-workload", "gcn3")
        assert failed.error is not None
        assert not results.all_verified()
        assert len(results.failures()) == 2   # both ISAs of the bad workload

    def test_failed_runs_never_written_to_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        Session(small_config(2)).suite(
            scale=SCALE, workloads=["no-such-workload"],
            use_cache=False, use_disk_cache=True,
            cache_dir=str(cache_dir), jobs=1)
        assert not list(cache_dir.glob("*.json"))


class TestProgressEvents:
    def test_events_cover_matrix_and_report_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        session = Session(small_config(2))
        common = dict(scale=SCALE,
                      workloads=["arraybw", "bitonic"], seed=SEED,
                      use_cache=False, use_disk_cache=True,
                      cache_dir=cache_dir)
        cold_events = []
        session.suite(jobs=2, progress=cold_events.append, **common)
        assert len(cold_events) == 4
        assert {e.status for e in cold_events} == {"ok"}
        assert sorted((e.workload, e.isa) for e in cold_events) == sorted(
            (w, isa) for w in ("arraybw", "bitonic") for isa in ("hsail", "gcn3"))
        assert {e.index for e in cold_events} == {1, 2, 3, 4}
        assert all(e.total == 4 for e in cold_events)

        warm_events = []
        session.suite(jobs=2, progress=warm_events.append, **common)
        assert {e.status for e in warm_events} == {"hit"}

    def test_event_format_line(self):
        event = JobEvent("comd", "gcn3", "miss", 1.234, 3, 20)
        line = event.format()
        assert "comd/gcn3" in line and "[3/20]" in line and "1.23s" in line


class TestResolveJobs:
    def test_explicit_count_passthrough(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_none_negative_mean_all_cores(self):
        try:
            cores = max(1, len(os.sched_getaffinity(0)))
        except AttributeError:
            cores = max(1, os.cpu_count() or 1)
        assert resolve_jobs(0) == cores
        assert resolve_jobs(None) == cores
        assert resolve_jobs(-1) == cores
