"""Generic liveness / linear-scan allocator tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels.regalloc import (
    allocate_registers,
    build_intervals,
    compute_live_in,
    linear_scan,
    LiveInterval,
    succs_from_instrs,
)


def straight(uses, defs):
    n = len(uses)
    succs = [[i + 1] for i in range(n - 1)] + [[]]
    return uses, defs, succs


class TestLiveness:
    def test_simple_def_use(self):
        uses, defs, succs = straight([[], [0]], [[0], []])
        live_in = compute_live_in(1, uses, defs, succs)
        assert live_in[0] == 0          # defined here, not live in
        assert live_in[1] == 1          # used here

    def test_live_through(self):
        uses, defs, succs = straight([[], [], [0]], [[0], [], []])
        live_in = compute_live_in(1, uses, defs, succs)
        assert live_in[1] == 1

    def test_loop_carried_value(self):
        # 0: def v0 ; 1: use v0, def v0 ; 2: cbr->1 ; 3: use v0, ret
        uses = [[], [0], [], [0]]
        defs = [[0], [0], [], []]
        succs = [[1], [2], [1, 3], []]
        live_in = compute_live_in(1, uses, defs, succs)
        assert live_in[1] == 1
        assert live_in[2] == 1  # live around the backedge

    def test_intervals_cover_loop(self):
        uses = [[], [0], [], [0]]
        defs = [[0], [0], [], []]
        succs = [[1], [2], [1, 3], []]
        intervals = build_intervals(1, uses, defs, succs, lambda v: 1)
        assert intervals[0].start == 0
        assert intervals[0].end == 3

    def test_dead_value_has_no_interval(self):
        uses, defs, succs = straight([[], []], [[0], []])
        # v0 never used: still gets a point interval at its def
        intervals = build_intervals(1, uses, defs, succs, lambda v: 1)
        assert intervals[0].start == intervals[0].end == 0


class TestLinearScan:
    def test_reuses_freed_slots(self):
        intervals = [
            LiveInterval(vreg=0, start=0, end=1, width=1),
            LiveInterval(vreg=1, start=2, end=3, width=1),
        ]
        result = linear_scan(intervals, budget=16)
        assert result.slot_of[0] == result.slot_of[1]
        assert result.slots_used <= 2

    def test_overlapping_get_distinct_slots(self):
        intervals = [
            LiveInterval(vreg=0, start=0, end=5, width=1),
            LiveInterval(vreg=1, start=1, end=4, width=1),
        ]
        result = linear_scan(intervals, budget=16)
        assert result.slot_of[0] != result.slot_of[1]

    def test_pairs_are_even_aligned(self):
        intervals = [
            LiveInterval(vreg=0, start=0, end=9, width=1),
            LiveInterval(vreg=1, start=0, end=9, width=2),
        ]
        result = linear_scan(intervals, budget=16)
        assert result.slot_of[1] % 2 == 0

    def test_reserved_slots_avoided(self):
        intervals = [LiveInterval(vreg=0, start=0, end=1, width=1)]
        result = linear_scan(intervals, budget=8, reserved={0, 1, 2})
        assert result.slot_of[0] == 3

    def test_spills_when_budget_exceeded(self):
        intervals = [
            LiveInterval(vreg=v, start=0, end=10, width=1) for v in range(4)
        ]
        result = linear_scan(intervals, budget=2)
        assert len(result.spilled) == 2
        assert len(result.slot_of) == 2

    def test_furthest_end_evicted_first(self):
        intervals = [
            LiveInterval(vreg=0, start=0, end=100, width=1),  # long-lived
            LiveInterval(vreg=1, start=1, end=2, width=1),    # short
        ]
        result = linear_scan(intervals, budget=1)
        assert 0 in result.spilled
        assert 1 in result.slot_of

    @given(st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 10),
                  st.sampled_from([1, 2])),
        min_size=1, max_size=24))
    def test_no_overlapping_assignments(self, raw):
        intervals = [
            LiveInterval(vreg=i, start=s, end=s + d, width=w)
            for i, (s, d, w) in enumerate(raw)
        ]
        result = linear_scan(intervals, budget=64)
        by_vreg = {iv.vreg: iv for iv in intervals}
        assigned = [(v, slot) for v, slot in result.slot_of.items()]
        for i, (v1, s1) in enumerate(assigned):
            for v2, s2 in assigned[i + 1:]:
                iv1, iv2 = by_vreg[v1], by_vreg[v2]
                overlap_time = not (iv1.end < iv2.start or iv2.end < iv1.start)
                r1 = set(range(s1, s1 + iv1.width))
                r2 = set(range(s2, s2 + iv2.width))
                if overlap_time:
                    assert not (r1 & r2), (v1, v2, result.slot_of)


class TestEndToEnd:
    def test_allocate_registers_smoke(self):
        uses = [[], [0], [0, 1], [2]]
        defs = [[0], [1], [2], []]
        succs = [[1], [2], [3], []]
        result = allocate_registers(
            num_vregs=3, uses=uses, defs=defs, succs=succs,
            width_of=lambda v: 1, budget=8,
        )
        assert not result.spilled
        assert set(result.slot_of) == {0, 1, 2}

    def test_succs_from_instrs(self):
        def branch_of(i):
            return (0, True) if i == 2 else None

        succs = succs_from_instrs(4, branch_of, lambda i: i == 3)
        assert succs == [[1], [2], [0, 3], []]
