"""Post-dominator / reconvergence analysis tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import KernelBuildError
from repro.kernels.cfg import (
    FlowGraph,
    flow_graph_from_branches,
    immediate_post_dominators,
    post_dominator_sets,
    reconvergence_table,
)


def diamond():
    """0: cbr->2, 1: then, 2: else-entry..., actually:
    0 cbr->3 (skip), 1,2 fallthrough path, 3 merge, 4 ret."""
    return flow_graph_from_branches(
        num_instrs=5,
        branch_targets={0: 3},
        conditional={0: True},
        returns=[4],
    )


class TestFlowGraph:
    def test_straight_line(self):
        g = flow_graph_from_branches(3, {}, {}, [2])
        assert g.succs == [[1], [2], []]

    def test_conditional_branch_has_two_successors(self):
        g = diamond()
        assert g.succs[0] == [1, 3]

    def test_unconditional_branch(self):
        g = flow_graph_from_branches(4, {1: 3}, {1: False}, [3])
        assert g.succs[1] == [3]

    def test_fall_off_end_rejected(self):
        with pytest.raises(KernelBuildError):
            flow_graph_from_branches(2, {}, {}, [])

    def test_branch_out_of_range_rejected(self):
        with pytest.raises(KernelBuildError):
            flow_graph_from_branches(2, {0: 5}, {0: False}, [1])

    def test_preds(self):
        g = diamond()
        preds = g.preds()
        assert 0 in preds[1]
        assert 0 in preds[3]


class TestPostDominators:
    def test_exit_dominates_only_itself(self):
        g = flow_graph_from_branches(2, {}, {}, [1])
        pdom = post_dominator_sets(g)
        assert pdom[1] == 1 << 1

    def test_merge_postdominates_branch(self):
        g = diamond()
        pdom = post_dominator_sets(g)
        assert pdom[0] & (1 << 3)  # node 3 post-dominates the branch

    def test_ipdom_of_branch_is_merge(self):
        g = diamond()
        ipdom = immediate_post_dominators(g)
        assert ipdom[0] == 3

    def test_ipdom_straight_line(self):
        g = flow_graph_from_branches(3, {}, {}, [2])
        ipdom = immediate_post_dominators(g)
        assert ipdom == [1, 2, None]

    def test_loop_backedge(self):
        # 0; 1 body; 2 cbr->1; 3 ret
        g = flow_graph_from_branches(4, {2: 1}, {2: True}, [3])
        ipdom = immediate_post_dominators(g)
        assert ipdom[2] == 3  # reconverge at loop exit


class TestReconvergenceTable:
    def test_if_else(self):
        # 0 cbr->3; 1 then; 2 br->4; 3 else; 4 ret
        table = reconvergence_table(
            5, {0: 3, 2: 4}, {0: True, 2: False}, [4]
        )
        assert table == {0: 4}

    def test_nested_ifs(self):
        # outer: 0 cbr->6; inner: 1 cbr->4; 2,3; 4,5; 6 ret
        table = reconvergence_table(
            7, {0: 6, 1: 4}, {0: True, 1: True}, [6]
        )
        assert table[0] == 6
        assert table[1] == 4

    def test_loop(self):
        table = reconvergence_table(4, {2: 1}, {2: True}, [3])
        assert table == {2: 3}

    def test_unconditional_branches_excluded(self):
        table = reconvergence_table(4, {1: 3}, {1: False}, [3])
        assert table == {}


class TestFigure3Structure:
    """The paper's Figure 3 if-else-if CFG at basic-block granularity."""

    def test_if_else_if_rpc(self):
        # Model: BB0(0 cbr->2) BB1(1? ...) — use instruction indices:
        # 0: cbr cond1 -> 4 (else-if side)
        # 1: store 84 ; 2: br -> 7
        # 4: cbr cond2 -> 7 ; 5: store 90 ; 6: fallthrough
        # 7: ret
        table = reconvergence_table(
            8,
            {0: 4, 2: 7, 4: 7},
            {0: True, 2: False, 4: True},
            [7],
        )
        assert table[0] == 7  # both branches reconverge at BB4 (the ret)
        assert table[4] == 7


@given(st.integers(min_value=2, max_value=12))
def test_nested_diamond_chain_property(depth):
    """Chains of diamonds: each branch reconverges before the next."""
    # layout per diamond: cbr(+3) ; then ; merge(noop) ... final ret
    num = depth * 3 + 1
    branch_targets = {}
    conditional = {}
    for d in range(depth):
        base = d * 3
        branch_targets[base] = base + 2
        conditional[base] = True
    table = reconvergence_table(num, branch_targets, conditional, [num - 1])
    for d in range(depth):
        base = d * 3
        assert table[base] == base + 2
