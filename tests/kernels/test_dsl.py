"""Kernel-builder DSL tests."""

import pytest

from repro.common.errors import KernelBuildError
from repro.kernels.dsl import KernelBuilder
from repro.kernels.ir import BlockElem, IfElem, LoopElem
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def simple_builder():
    return KernelBuilder("k", [("p", DType.U64), ("n", DType.U32)])


class TestValuesAndTypes:
    def test_const_is_foldable(self):
        kb = simple_builder()
        c = kb.const(DType.U32, 7)
        assert kb.const_of(c) == 7

    def test_var_is_not_foldable(self):
        kb = simple_builder()
        v = kb.var(DType.U32, 7)
        assert kb.const_of(v) is None

    def test_assign_to_const_rejected(self):
        kb = simple_builder()
        c = kb.const(DType.U32, 1)
        with pytest.raises(KernelBuildError):
            kb.assign(c, 2)

    def test_type_mismatch_rejected(self):
        kb = simple_builder()
        a = kb.const(DType.U32, 1)
        b = kb.const(DType.F32, 1.0)
        with pytest.raises(KernelBuildError):
            kb.add(a, b)

    def test_python_scalars_coerce(self):
        kb = simple_builder()
        a = kb.var(DType.F32, 0.0)
        result = kb.add(a, 2.5)
        assert result.dtype == DType.F32

    def test_operator_sugar(self):
        kb = simple_builder()
        a = kb.var(DType.U32, 1)
        b = kb.var(DType.U32, 2)
        assert (a + b).dtype == DType.U32
        assert (a * b).dtype == DType.U32
        assert (a & b).dtype == DType.U32
        assert (a << 2).dtype == DType.U32

    def test_float_div_operator(self):
        kb = simple_builder()
        a = kb.var(DType.F64, 1.0)
        b = kb.var(DType.F64, 2.0)
        assert (a / b).dtype == DType.F64

    def test_integer_div_rejected(self):
        kb = simple_builder()
        a = kb.var(DType.U32, 4)
        with pytest.raises(KernelBuildError):
            kb.fdiv(a, 2)

    def test_cmp_returns_predicate(self):
        kb = simple_builder()
        pred = kb.lt(kb.var(DType.U32, 1), 2)
        assert pred.dtype == DType.B1

    def test_cmov_needs_predicate(self):
        kb = simple_builder()
        v = kb.var(DType.U32, 0)
        with pytest.raises(KernelBuildError):
            kb.cmov(v, 1, 2)

    def test_shift_on_float_rejected(self):
        kb = simple_builder()
        f = kb.var(DType.F32, 1.0)
        with pytest.raises(KernelBuildError):
            kb.shl(f, 1)

    def test_mad_is_integer_only(self):
        kb = simple_builder()
        f = kb.var(DType.F32, 1.0)
        with pytest.raises(KernelBuildError):
            kb.mad(f, f, f)

    def test_fma_is_float_only(self):
        kb = simple_builder()
        v = kb.var(DType.U32, 1)
        with pytest.raises(KernelBuildError):
            kb.fma(v, v, v)

    def test_cvt_identity_returns_same_value(self):
        kb = simple_builder()
        v = kb.var(DType.U32, 1)
        assert kb.cvt(v, DType.U32) is v


class TestKernargs:
    def test_offsets_are_aligned(self):
        kb = KernelBuilder("k", [("a", DType.U32), ("b", DType.U64), ("c", DType.U32)])
        ir = kb.finish()
        offsets = {p.name: p.offset for p in ir.params}
        assert offsets == {"a": 0, "b": 8, "c": 16}
        assert ir.kernarg_bytes == 20

    def test_unknown_kernarg_rejected(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            kb.kernarg("missing")


class TestMemoryOps:
    def test_global_needs_u64_address(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            kb.load(Segment.GLOBAL, kb.const(DType.U32, 0), DType.F32)

    def test_group_needs_u32_address(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            kb.load(Segment.GROUP, kb.kernarg("p"), DType.F32)

    def test_kernarg_segment_not_directly_loadable(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            kb.load(Segment.KERNARG, kb.const(DType.U32, 0), DType.U32)

    def test_group_alloc_layout(self):
        kb = simple_builder()
        a = kb.group_alloc("a", 100)
        b = kb.group_alloc("b", 4)
        assert kb.const_of(a) == 0
        assert kb.const_of(b) == 100
        ir = kb.finish()
        assert ir.group_bytes == 104

    def test_duplicate_group_alloc_rejected(self):
        kb = simple_builder()
        kb.group_alloc("x", 4)
        with pytest.raises(KernelBuildError):
            kb.group_alloc("x", 4)

    def test_private_and_spill_sizes(self):
        kb = simple_builder()
        kb.private_scratch(10)
        kb.spill_scratch(8)
        ir = kb.finish()
        assert ir.private_bytes == 12  # rounded to dwords
        assert ir.spill_bytes == 8


class TestControlFlow:
    def test_if_region_shape(self):
        kb = simple_builder()
        with kb.If(kb.lt(kb.wi_abs_id(), kb.kernarg("n"))):
            kb.var(DType.U32, 1)
        ir = kb.finish()
        kinds = [type(e).__name__ for e in ir.regions]
        assert kinds == ["BlockElem", "IfElem", "BlockElem"]
        if_elem = ir.regions[1]
        assert isinstance(if_elem, IfElem)
        assert if_elem.else_elems == []

    def test_if_else_region_shape(self):
        kb = simple_builder()
        with kb.If(kb.lt(kb.wi_abs_id(), 1)) as br:
            kb.var(DType.U32, 1)
            with br.Else():
                kb.var(DType.U32, 2)
        ir = kb.finish()
        if_elem = ir.regions[1]
        assert isinstance(if_elem, IfElem)
        assert if_elem.then_elems and if_elem.else_elems

    def test_duplicate_else_rejected(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            with kb.If(kb.lt(kb.wi_abs_id(), 1)) as br:
                with br.Else():
                    pass
                with br.Else():
                    pass

    def test_loop_region_shape(self):
        kb = simple_builder()
        i = kb.var(DType.U32, 0)
        with kb.Loop() as loop:
            kb.assign(i, i + 1)
            loop.continue_if(kb.lt(i, 4))
        ir = kb.finish()
        assert any(isinstance(e, LoopElem) for e in ir.regions)

    def test_loop_without_continue_rejected(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            with kb.Loop():
                kb.var(DType.U32, 1)

    def test_nested_regions(self):
        kb = simple_builder()
        i = kb.var(DType.U32, 0)
        with kb.Loop() as loop:
            with kb.If(kb.lt(i, 2)):
                kb.assign(i, i + 2)
            kb.assign(i, i + 1)
            loop.continue_if(kb.lt(i, 10))
        ir = kb.finish()
        loop_elem = next(e for e in ir.regions if isinstance(e, LoopElem))
        assert any(isinstance(e, IfElem) for e in loop_elem.body_elems)

    def test_for_range_builds_counted_loop(self):
        kb = simple_builder()
        total = kb.var(DType.U32, 0)
        with kb.for_range(0, 5) as i:
            kb.assign(total, total + i)
        ir = kb.finish()
        assert any(isinstance(e, LoopElem) for e in ir.regions)

    def test_for_range_zero_step_rejected(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            with kb.for_range(0, 4, step=0):
                pass

    def test_if_condition_must_be_predicate(self):
        kb = simple_builder()
        with pytest.raises(KernelBuildError):
            kb.If(kb.var(DType.U32, 1))


class TestFinish:
    def test_finish_appends_ret(self):
        ir = simple_builder().finish()
        assert ir.blocks[-1].ops[-1].opcode == "ret"

    def test_double_finish_rejected(self):
        kb = simple_builder()
        kb.finish()
        with pytest.raises(KernelBuildError):
            kb.finish()

    def test_emit_after_finish_rejected(self):
        kb = simple_builder()
        kb.finish()
        with pytest.raises(KernelBuildError):
            kb.var(DType.U32, 1)

    def test_validate_rejects_misplaced_terminator(self):
        kb = simple_builder()
        ir = kb.finish()
        # Manually corrupt: insert a branch mid-block.
        from repro.kernels.ir import HirOp

        ir.blocks[0].ops.insert(0, HirOp("ret", None, ()))
        with pytest.raises(KernelBuildError):
            ir.validate()

    def test_pretty_includes_name(self):
        ir = simple_builder().finish()
        assert "kernel k" in ir.pretty()
