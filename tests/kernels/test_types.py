"""DType and immediate encoding tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import KernelBuildError
from repro.kernels.types import DType, decode_imm, encode_imm


class TestDType:
    def test_sizes(self):
        assert DType.U32.size_bytes == 4
        assert DType.F64.size_bytes == 8
        assert DType.B1.size_bytes == 4

    def test_register_slots(self):
        assert DType.U32.reg_slots == 1
        assert DType.U64.reg_slots == 2
        assert DType.F64.reg_slots == 2

    def test_flags(self):
        assert DType.F32.is_float and DType.F64.is_float
        assert not DType.U32.is_float
        assert DType.S32.is_signed
        assert not DType.U32.is_signed
        assert DType.U64.is_wide and not DType.U32.is_wide

    def test_numpy_mapping(self):
        assert DType.F32.np_dtype == np.dtype(np.float32)
        assert DType.S32.np_dtype == np.dtype(np.int32)
        assert DType.B1.np_dtype == np.dtype(np.uint32)


class TestImmediates:
    def test_f32_pattern(self):
        assert encode_imm(DType.F32, 1.0) == 0x3F800000

    def test_f64_pattern(self):
        assert encode_imm(DType.F64, 1.0) == 0x3FF0000000000000

    def test_b1(self):
        assert encode_imm(DType.B1, True) == 1
        assert encode_imm(DType.B1, 0) == 0

    def test_s32_twos_complement(self):
        assert encode_imm(DType.S32, -1) == 0xFFFFFFFF

    def test_range_checks(self):
        with pytest.raises(KernelBuildError):
            encode_imm(DType.U32, -1)
        with pytest.raises(KernelBuildError):
            encode_imm(DType.U32, 2**32)
        with pytest.raises(KernelBuildError):
            encode_imm(DType.S32, 2**31)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_s32_roundtrip(self, value):
        assert decode_imm(DType.S32, encode_imm(DType.S32, value)) == value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_u64_roundtrip(self, value):
        assert decode_imm(DType.U64, encode_imm(DType.U64, value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_roundtrip(self, value):
        got = decode_imm(DType.F32, encode_imm(DType.F32, value))
        assert got == np.float32(value)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_roundtrip(self, value):
        assert decode_imm(DType.F64, encode_imm(DType.F64, value)) == value
