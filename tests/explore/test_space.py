"""Sweep space enumeration: axes, grids, OFAT, dedup, invalid points."""

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.explore.space import (
    Axis,
    Grid,
    OneFactorAtATime,
    build_space,
    format_value,
    parse_value,
)


class TestParseValue:
    def test_size_suffixes(self):
        assert parse_value("8k") == 8192
        assert parse_value("16K") == 16384
        assert parse_value("2m") == 2 * 1024 * 1024
        assert parse_value("1g") == 1024 ** 3
        assert parse_value("0.5k") == 512

    def test_plain_numbers(self):
        assert parse_value("64") == 64
        assert isinstance(parse_value("64"), int)
        assert parse_value("1.5") == 1.5

    def test_booleans(self):
        assert parse_value("true") is True
        assert parse_value("False") is False

    def test_whitespace_stripped(self):
        assert parse_value(" 8k ") == 8192

    def test_garbage_rejected(self):
        for bad in ("", "abc", "8q", "qk"):
            with pytest.raises(ConfigError):
                parse_value(bad)

    def test_format_round_trip(self):
        for text in ("8k", "64", "1.5", "true", "false"):
            value = parse_value(text)
            assert parse_value(format_value(value)) == value


class TestAxis:
    def test_parse_cli_spelling(self):
        axis = Axis.parse("l1i.size_bytes=8k,16k,32k")
        assert axis.path == "l1i.size_bytes"
        assert axis.values == (8192, 16384, 32768)

    def test_describe_round_trips(self):
        axis = Axis.parse("cu.vrf_banks=2,4,8")
        assert Axis.parse(axis.describe()) == axis

    def test_bad_specs_rejected(self):
        for bad in ("no_equals", "=1,2", "path=", "path=1,1"):
            with pytest.raises(ConfigError):
                Axis.parse(bad)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            Axis("cu.vrf_banks", ())


class TestGrid:
    def test_cartesian_product(self):
        grid = Grid([Axis("cu.vrf_banks", (2, 4)),
                     Axis("l1i.size_bytes", (8192, 16384))])
        points = grid.points(small_config(2))
        assert len(points) == 4
        ids = [p.point_id for p in points]
        assert "cu.vrf_banks=2+l1i.size_bytes=8192" in ids
        assert "cu.vrf_banks=4+l1i.size_bytes=16384" in ids

    def test_points_are_validated_configs(self):
        grid = Grid([Axis("cu.vrf_banks", (8,))])
        (point,) = grid.points(small_config(2))
        assert point.valid
        assert point.config.cu.vrf_banks == 8
        assert point.fingerprint() is not None

    def test_invalid_geometry_marked_not_raised(self):
        # 100 B is not a multiple of the 64 B line; __post_init__ rejects it.
        grid = Grid([Axis("l1i.size_bytes", (8192, 100))])
        points = grid.points(small_config(2))
        assert len(points) == 2
        bad = [p for p in points if not p.valid]
        assert len(bad) == 1
        assert bad[0].config is None
        assert "l1i.size_bytes" in bad[0].error

    def test_unknown_path_marked_invalid(self):
        (point,) = Grid([Axis("cu.nope", (1,))]).points(small_config(2))
        assert not point.valid
        assert "cu.nope" in point.error

    def test_duplicate_paths_rejected(self):
        with pytest.raises(ConfigError):
            Grid([Axis("cu.vrf_banks", (2,)), Axis("cu.vrf_banks", (4,))])

    def test_no_axes_rejected(self):
        with pytest.raises(ConfigError):
            Grid([])


class TestOneFactorAtATime:
    def test_base_plus_singles(self):
        space = OneFactorAtATime([Axis("cu.vrf_banks", (2, 8)),
                                  Axis("l1i.size_bytes", (8192,))])
        points = space.points(small_config(2))
        ids = [p.point_id for p in points]
        assert ids[0] == "base"
        assert set(ids) == {"base", "cu.vrf_banks=2", "cu.vrf_banks=8",
                            "l1i.size_bytes=8192"}

    def test_base_equal_value_collapses(self):
        base = small_config(2)
        space = OneFactorAtATime(
            [Axis("cu.vrf_banks", (base.cu.vrf_banks, 8))])
        points = space.points(base)
        # The value equal to the base dedupes into the base point.
        assert [p.point_id for p in points] == ["base", "cu.vrf_banks=8"]


class TestBuildSpace:
    def test_modes(self):
        axes = [Axis("cu.vrf_banks", (2, 4))]
        assert isinstance(build_space(axes, "grid"), Grid)
        assert isinstance(build_space(axes, "ofat"), OneFactorAtATime)
        with pytest.raises(ConfigError):
            build_space(axes, "diagonal")
