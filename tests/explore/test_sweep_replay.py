"""Sweep-level trace replay: capture once per group, replay the rest."""

import pytest

from repro.common.config import small_config
from repro.common.errors import ReproError
from repro.explore.space import Axis
from repro.explore.sweep import _replay_differs, run_sweep
from repro.harness.cache import TraceStore, trace_fingerprint
from repro.harness.runner import clear_suite_cache

AXIS = "l1d.size_bytes=8k,16k,32k,64k"


@pytest.fixture(autouse=True)
def _fresh_staging():
    clear_suite_cache()
    yield
    clear_suite_cache()


def _sweep(tmp_path, execution="auto", workloads=("arraybw",), jobs=1,
           resume=False, trace_dir=None, axis=AXIS, **kw):
    return run_sweep(
        [Axis.parse(axis)], base=small_config(2), workloads=list(workloads),
        scale=0.1, jobs=jobs, use_disk_cache=False,
        sweeps_dir=str(tmp_path / "sweeps"), resume=resume,
        execution=execution,
        trace_dir=str(trace_dir or tmp_path / "traces"), **kw,
    )


def _cell_payloads(results):
    out = {}
    for pr in results.points:
        for key, run in pr.runs.items():
            payload = run.to_payload()
            payload.pop("wall_seconds", None)
            payload.pop("execution", None)
            out[(pr.point.point_id,) + key] = payload
    return out


class TestAutoSweep:
    def test_captures_once_per_isa_then_replays(self, tmp_path):
        results = _sweep(tmp_path)
        assert results.execution == "auto"
        assert not results.failed_points
        # 4 points x 1 workload x 2 ISAs = 8 cells; one functional
        # execution per workload x ISA group, everything else replayed.
        assert results.captures == 2
        assert results.replays == 6
        assert results.replay_drift == 0
        assert results.verified_cell  # the drift guard sampled a cell

    def test_statistics_match_execute_sweep(self, tmp_path):
        auto = _sweep(tmp_path)
        clear_suite_cache()
        execute = _sweep(tmp_path, execution="execute")
        assert _cell_payloads(auto) == _cell_payloads(execute)

    def test_warm_store_replays_everything(self, tmp_path):
        _sweep(tmp_path)
        clear_suite_cache()
        again = _sweep(tmp_path)
        assert again.captures == 0
        assert again.replays == 8
        assert again.replay_drift == 0

    def test_to_json_carries_replay_fields(self, tmp_path):
        import json

        doc = json.loads(_sweep(tmp_path).to_json())
        assert doc["execution"] == "auto"
        assert doc["captures"] == 2
        assert doc["replays"] == 6
        assert doc["replay_drift"] == 0

    def test_parallel_pool_shares_the_store(self, tmp_path):
        results = _sweep(tmp_path, jobs=2)
        assert not results.failed_points
        assert results.captures == 2
        assert results.replays == 6
        assert results.replay_drift == 0


class TestStrictAndDegraded:
    def test_strict_replay_against_warm_store(self, tmp_path):
        _sweep(tmp_path)
        clear_suite_cache()
        strict = _sweep(tmp_path, execution="replay")
        assert not strict.failed_points
        assert strict.captures == 0
        assert strict.replays == 8

    def test_strict_replay_with_empty_store_fails_cells(self, tmp_path):
        strict = _sweep(tmp_path, execution="replay", verify_replay=False)
        assert strict.failed_points  # missing traces fail, never execute
        assert strict.captures == 0 and strict.replays == 0

    def test_strict_replay_without_store_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        with pytest.raises(ReproError, match="trace store"):
            run_sweep([Axis.parse(AXIS)], base=small_config(2),
                      workloads=["arraybw"], scale=0.1, use_disk_cache=False,
                      sweeps_dir=str(tmp_path / "sweeps"), execution="replay",
                      trace_dir=None)

    def test_auto_degrades_without_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        results = run_sweep([Axis.parse(AXIS)], base=small_config(2),
                            workloads=["arraybw"], scale=0.1,
                            use_disk_cache=False,
                            sweeps_dir=str(tmp_path / "sweeps"),
                            execution="auto", trace_dir=None)
        assert results.execution == "execute"
        assert results.captures == 0 and results.replays == 0
        assert not results.failed_points

    def test_unknown_execution_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="execution mode"):
            _sweep(tmp_path, execution="warp")


class TestDriftGuard:
    def test_replay_differs_on_stat_change(self, tmp_path):
        results = _sweep(tmp_path)
        run = next(iter(results.points[0].runs.values()))
        same = type(run).from_payload(run.to_payload())
        assert not _replay_differs(run, same)
        tampered = type(run).from_payload(run.to_payload())
        tampered.total.bump("cycles", 1)
        assert _replay_differs(run, tampered)

    def test_replay_differs_on_failed_reexecution(self, tmp_path):
        results = _sweep(tmp_path)
        run = next(iter(results.points[0].runs.values()))
        failed = type(run).from_payload(run.to_payload())
        failed.error = "boom"
        assert _replay_differs(run, failed)

    def test_no_verify_skips_the_guard(self, tmp_path):
        results = _sweep(tmp_path, verify_replay=False)
        assert results.verified_cell == ""
        assert results.replay_drift == 0


class TestResumeInteraction:
    def test_journal_resume_skips_replay_entirely(self, tmp_path):
        first = _sweep(tmp_path, resume=True)
        assert first.captures == 2
        clear_suite_cache()
        resumed = _sweep(tmp_path, resume=True)
        assert resumed.replayed() == 4       # all points from the journal
        assert resumed.captures == 0 and resumed.replays == 0
        assert _cell_payloads(first) == _cell_payloads(resumed)

    def test_corrupt_stored_trace_self_heals(self, tmp_path):
        _sweep(tmp_path)
        store = TraceStore(tmp_path / "traces")
        fp = trace_fingerprint(small_config(2), "arraybw", "gcn3", 0.1, 7)
        store._path(fp).write_bytes(b"garbage")
        clear_suite_cache()
        again = _sweep(tmp_path)
        assert not again.failed_points
        assert again.captures == 1           # only the corrupted group
        assert again.replays == 7
        assert again.replay_drift == 0
