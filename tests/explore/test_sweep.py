"""Sweep scheduler: journaling, resume-without-resimulation, isolation."""

import json

import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.explore.space import Axis
from repro.explore.sweep import (
    JOURNAL_FORMAT_VERSION,
    run_sweep,
    sweep_fingerprint,
)
from repro.harness.parallel import execute_job
from repro.harness.runner import run_workload

AXES = [Axis("cu.vrf_banks", (2, 4))]
WORKLOADS = ["arraybw"]
SCALE = 0.1


def _sweep(tmp, **kw):
    kw.setdefault("base", small_config(2))
    kw.setdefault("workloads", WORKLOADS)
    kw.setdefault("scale", SCALE)
    kw.setdefault("use_disk_cache", False)
    kw.setdefault("sweeps_dir", str(tmp))
    return run_sweep(kw.pop("axes", AXES), **kw)


class CountingExecute:
    """Execute hook that counts simulated cells (serial path only)."""

    def __init__(self):
        self.calls = []

    def __call__(self, job):
        self.calls.append(job.describe())
        return execute_job(job)


class TestSweepFingerprint:
    def test_deterministic(self):
        a = sweep_fingerprint(small_config(2), AXES, "grid", WORKLOADS,
                              ("hsail", "gcn3"), SCALE, 7)
        b = sweep_fingerprint(small_config(2), AXES, "grid", WORKLOADS,
                              ("hsail", "gcn3"), SCALE, 7)
        assert a == b
        assert len(a) == 12
        int(a, 16)

    def test_every_component_matters(self):
        base = sweep_fingerprint(small_config(2), AXES, "grid", WORKLOADS,
                                 ("hsail", "gcn3"), SCALE, 7)
        variants = [
            sweep_fingerprint(small_config(4), AXES, "grid", WORKLOADS,
                              ("hsail", "gcn3"), SCALE, 7),
            sweep_fingerprint(small_config(2),
                              [Axis("cu.vrf_banks", (2, 8))], "grid",
                              WORKLOADS, ("hsail", "gcn3"), SCALE, 7),
            sweep_fingerprint(small_config(2), AXES, "ofat", WORKLOADS,
                              ("hsail", "gcn3"), SCALE, 7),
            sweep_fingerprint(small_config(2), AXES, "grid", ["comd"],
                              ("hsail", "gcn3"), SCALE, 7),
            sweep_fingerprint(small_config(2), AXES, "grid", WORKLOADS,
                              ("gcn3",), SCALE, 7),
            sweep_fingerprint(small_config(2), AXES, "grid", WORKLOADS,
                              ("hsail", "gcn3"), 0.2, 7),
            sweep_fingerprint(small_config(2), AXES, "grid", WORKLOADS,
                              ("hsail", "gcn3"), SCALE, 8),
        ]
        assert all(v != base for v in variants)


class TestCleanSweep:
    def test_matches_direct_runs(self, tmp_path):
        results = _sweep(tmp_path)
        assert len(results.points) == 2
        assert not results.failed_points
        assert results.replayed() == 0
        for pr in results.points:
            banks = dict(pr.point.overrides)["cu.vrf_banks"]
            for isa in ("hsail", "gcn3"):
                direct = run_workload(
                    "arraybw", isa, scale=SCALE,
                    config=small_config(2).with_overrides(
                        {"cu.vrf_banks": banks}))
                got = pr.runs[("arraybw", isa)]
                assert got.total.snapshot() == direct.total.snapshot()

    def test_journal_written_per_point(self, tmp_path):
        results = _sweep(tmp_path)
        lines = [json.loads(l) for l in
                 open(results.journal_path, encoding="utf-8")]
        assert lines[0]["type"] == "header"
        assert lines[0]["format"] == JOURNAL_FORMAT_VERSION
        points = [l for l in lines if l["type"] == "point"]
        assert [p["point"]["point_id"] for p in points] == \
            [pr.point.point_id for pr in results.points]
        assert all(len(p["runs"]) == 2 for p in points)

    def test_point_suite_adapter_feeds_figures(self, tmp_path):
        from repro.harness.figures import figure09_ib_flushes

        results = _sweep(tmp_path)
        suite = results.points[0].suite(SCALE)
        assert suite.workloads == ["arraybw"]
        figure09_ib_flushes(suite)  # must not raise

    def test_progress_events_tagged_with_point(self, tmp_path):
        events = []
        _sweep(tmp_path, progress=events.append)
        assert len(events) == 4
        assert {e.point for e in events} == {"cu.vrf_banks=2",
                                             "cu.vrf_banks=4"}
        assert all(e.status == "ok" for e in events)
        assert "[cu.vrf_banks=2]" in events[0].format() or \
            "cu.vrf_banks=2:" in events[0].format()


class TestResume:
    def test_killed_sweep_resumes_without_resimulation(self, tmp_path):
        """The satellite contract: kill mid-flight, resume, and the
        journaled points replay with zero re-simulation while the merged
        results equal a clean serial sweep."""
        events = []

        def kill_after_first_point(event):
            events.append(event)
            done = [e for e in events if e.status in ("ok", "failed")]
            if len(done) == 2:   # first point = 1 workload x 2 ISAs
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            _sweep(tmp_path, progress=kill_after_first_point)

        counter = CountingExecute()
        resumed = _sweep(tmp_path, resume=True, execute=counter)

        assert resumed.replayed() == 1
        assert resumed.points[0].from_journal
        assert not resumed.points[1].from_journal
        # Only the second point's two cells were simulated.
        assert len(counter.calls) == 2
        assert all("cu.vrf_banks=4" in c for c in counter.calls)

        clean = _sweep(tmp_path / "clean")
        assert [pr.point.point_id for pr in resumed.points] == \
            [pr.point.point_id for pr in clean.points]
        for a, b in zip(resumed.points, clean.points):
            for key in b.runs:
                assert a.runs[key].total.snapshot() == \
                    b.runs[key].total.snapshot()

    def test_full_resume_serves_everything_from_journal(self, tmp_path):
        _sweep(tmp_path)
        counter = CountingExecute()
        events = []
        resumed = _sweep(tmp_path, resume=True, execute=counter,
                         progress=events.append)
        assert resumed.replayed() == 2
        assert counter.calls == []
        assert {e.status for e in events} == {"journal"}

    def test_resume_by_explicit_sweep_id(self, tmp_path):
        first = _sweep(tmp_path)
        counter = CountingExecute()
        resumed = _sweep(tmp_path, resume=first.sweep_id, execute=counter)
        assert resumed.sweep_id == first.sweep_id
        assert resumed.replayed() == 2
        assert counter.calls == []

    def test_fresh_run_truncates_prior_journal(self, tmp_path):
        _sweep(tmp_path)
        counter = CountingExecute()
        again = _sweep(tmp_path, execute=counter)  # no resume
        assert again.replayed() == 0
        assert len(counter.calls) == 4

    def test_stale_source_journal_resimulates(self, tmp_path):
        results = _sweep(tmp_path)
        lines = open(results.journal_path, encoding="utf-8").readlines()
        header = json.loads(lines[0])
        header["source"] = "0" * len(header["source"])
        with open(results.journal_path, "w", encoding="utf-8") as f:
            f.write(json.dumps(header) + "\n")
            f.writelines(lines[1:])
        counter = CountingExecute()
        with pytest.warns(UserWarning, match="different source tree"):
            resumed = _sweep(tmp_path, resume=True, execute=counter)
        assert resumed.replayed() == 0
        assert len(counter.calls) == 4

    def test_truncated_tail_ignored(self, tmp_path):
        results = _sweep(tmp_path)
        with open(results.journal_path, "a", encoding="utf-8") as f:
            f.write('{"type": "point", "point": {"overr')  # mid-write kill
        counter = CountingExecute()
        resumed = _sweep(tmp_path, resume=True, execute=counter)
        assert resumed.replayed() == 2
        assert counter.calls == []

    def test_changed_config_fingerprint_resimulates(self, tmp_path):
        results = _sweep(tmp_path)
        lines = open(results.journal_path, encoding="utf-8").readlines()
        entry = json.loads(lines[1])
        entry["point"]["config_fingerprint"] = "deadbeefdeadbeef"
        with open(results.journal_path, "w", encoding="utf-8") as f:
            f.write(lines[0])
            f.write(json.dumps(entry) + "\n")
            f.writelines(lines[2:])
        counter = CountingExecute()
        resumed = _sweep(tmp_path, resume=True, execute=counter)
        assert resumed.replayed() == 1   # the untampered point
        assert len(counter.calls) == 2   # the tampered one re-ran


class TestFailureIsolation:
    def test_invalid_point_journaled_failed_not_simulated(self, tmp_path):
        counter = CountingExecute()
        results = _sweep(tmp_path,
                         axes=[Axis("l1i.size_bytes", (8192, 100))],
                         execute=counter)
        assert len(results.points) == 2
        (bad,) = results.failed_points
        assert bad.point.error is not None
        assert "l1i.size_bytes" in bad.error
        assert len(counter.calls) == 2   # only the valid point ran
        # The failed point is journaled, so resume replays it too.
        counter2 = CountingExecute()
        resumed = _sweep(tmp_path,
                         axes=[Axis("l1i.size_bytes", (8192, 100))],
                         resume=True, execute=counter2)
        assert resumed.replayed() == 2
        assert counter2.calls == []

    def test_unwritable_journal_degrades_gracefully(self, tmp_path):
        # A *file* where the sweeps dir should be: mkdir fails, journalling
        # turns off, but the sweep itself still completes correctly.
        blocker = tmp_path / "nope"
        blocker.write_text("not a directory")
        counter = CountingExecute()
        results = _sweep(tmp_path, sweeps_dir=str(blocker), execute=counter)
        assert len(results.points) == 2
        assert not results.failed_points
        assert len(counter.calls) == 4


class TestDiskCacheIntegration:
    def test_warm_cache_skips_pool(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _sweep(tmp_path / "s1", use_disk_cache=True, cache_dir=cache_dir)
        counter = CountingExecute()
        events = []
        again = _sweep(tmp_path / "s2", use_disk_cache=True,
                       cache_dir=cache_dir, execute=counter,
                       progress=events.append)
        assert counter.calls == []
        assert {e.status for e in events} == {"hit"}
        assert not again.failed_points


class TestSessionSweep:
    def test_string_axes_accepted(self, tmp_path):
        session = Session(small_config(2))
        results = session.sweep(["cu.vrf_banks=2,4"], workloads=WORKLOADS,
                                scale=SCALE, use_disk_cache=False,
                                sweeps_dir=str(tmp_path))
        assert len(results.points) == 2
        assert not results.failed_points

    def test_parallel_matches_serial(self, tmp_path):
        serial = _sweep(tmp_path / "a")
        parallel = _sweep(tmp_path / "b", jobs=2)
        for a, b in zip(serial.points, parallel.points):
            assert a.point.point_id == b.point.point_id
            for key in a.runs:
                assert a.runs[key].total.snapshot() == \
                    b.runs[key].total.snapshot()


class TestJournalLock:
    def test_second_writer_is_refused_naming_the_holder(self, tmp_path):
        import os

        from repro.common.errors import ReproError
        from repro.explore.sweep import SweepJournal, journal_header

        header = journal_header("cafe12345678", small_config(2), AXES,
                                "grid", WORKLOADS, ("gcn3",), SCALE, 7)
        first = SweepJournal(str(tmp_path), "cafe12345678")
        first.open(header, resume=False)
        try:
            second = SweepJournal(str(tmp_path), "cafe12345678")
            with pytest.raises(ReproError) as excinfo:
                second.open(header, resume=False)
            message = str(excinfo.value)
            assert "locked by" in message
            assert f"pid {os.getpid()}" in message
        finally:
            first.close()

    def test_lock_released_on_close(self, tmp_path):
        from repro.explore.sweep import SweepJournal, journal_header

        header = journal_header("cafe12345678", small_config(2), AXES,
                                "grid", WORKLOADS, ("gcn3",), SCALE, 7)
        first = SweepJournal(str(tmp_path), "cafe12345678")
        first.open(header, resume=False)
        first.close()
        second = SweepJournal(str(tmp_path), "cafe12345678")
        second.open(header, resume=False)          # no longer contended
        second.close()
