"""Sensitivity analysis: responses, curves, tornado, thresholds, exports."""

import io
import json
import math

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.common.stats import StatSet
from repro.explore.analyze import (
    curve,
    curve_report,
    monotonicity,
    points_report,
    response_value,
    threshold,
    tornado,
    write_csv,
    write_json,
    write_markdown,
    write_text,
)
from repro.explore.space import Axis, SweepPoint
from repro.explore.sweep import PointResult, SweepResults
from repro.harness.runner import WorkloadRun


def _run(workload, isa, misses, cycles=1000, error=None):
    total = StatSet()
    total.bump("ifetch_misses", misses)
    total.bump("cycles", cycles)
    return WorkloadRun(
        workload=workload, isa=isa, verified=error is None, total=total,
        per_dispatch=[], dispatch_kernel_names=[], data_footprint_bytes=0,
        instr_footprint_bytes=0, static_instructions=0, kernel_code_bytes={},
        wall_seconds=0.0, error=error,
    )


def _point(axis_value, hsail_misses, gcn3_misses, workload="lulesh",
           path="l1i.size_bytes", failed=False):
    config = small_config(2).with_overrides({path: axis_value})
    point = SweepPoint(overrides=((path, axis_value),), config=config)
    runs = {
        (workload, "hsail"): _run(workload, "hsail", hsail_misses),
        (workload, "gcn3"): _run(
            workload, "gcn3", gcn3_misses,
            error="boom" if failed else None),
    }
    return PointResult(point=point, runs=runs)


def _results(points, axis, workloads=("lulesh",)):
    return SweepResults(
        sweep_id="test", base=small_config(2), axes=(axis,), mode="grid",
        workloads=tuple(workloads), isas=("hsail", "gcn3"), scale=0.5,
        seed=7, points=points,
    )


#: a synthetic claim-4 shape: the ratio explodes below 8k then flattens.
AXIS = Axis("l1i.size_bytes", (2048, 4096, 8192, 16384))
POINTS = [
    _point(2048, 100, 500),    # ratio 5.0
    _point(4096, 100, 400),    # ratio 4.0
    _point(8192, 100, 150),    # ratio 1.5
    _point(16384, 100, 150),   # ratio 1.5
]


class TestResponseValue:
    def test_ratio_is_gcn3_over_hsail(self):
        assert response_value(POINTS[0], "lulesh",
                              "ratio:ifetch_misses") == 5.0

    def test_inv_ratio(self):
        assert response_value(POINTS[0], "lulesh",
                              "inv_ratio:ifetch_misses") == pytest.approx(0.2)

    def test_raw_isa_values(self):
        assert response_value(POINTS[0], "lulesh",
                              "hsail:ifetch_misses") == 100.0
        assert response_value(POINTS[0], "lulesh",
                              "gcn3:ifetch_misses") == 500.0

    def test_failed_cell_is_nan(self):
        pr = _point(2048, 100, 500, failed=True)
        assert math.isnan(response_value(pr, "lulesh",
                                         "ratio:ifetch_misses"))
        assert math.isnan(response_value(pr, "lulesh",
                                         "gcn3:ifetch_misses"))
        # The surviving half of the pair still reads out.
        assert response_value(pr, "lulesh", "hsail:ifetch_misses") == 100.0

    def test_missing_workload_is_nan(self):
        assert math.isnan(response_value(POINTS[0], "fft",
                                         "ratio:ifetch_misses"))

    def test_zero_denominator_is_nan(self):
        pr = _point(2048, 0, 500)
        assert math.isnan(response_value(pr, "lulesh",
                                         "ratio:ifetch_misses"))

    def test_bad_specs_rejected(self):
        for bad in ("ifetch_misses", "ratio:", "sideways:ifetch_misses"):
            with pytest.raises(ConfigError):
                response_value(POINTS[0], "lulesh", bad)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigError, match="unknown response metric"):
            response_value(POINTS[0], "lulesh", "ratio:ifetch_missses")


class TestMonotonicity:
    def test_shapes(self):
        assert monotonicity([5.0, 4.0, 1.5, 1.5]) == "decreasing"
        assert monotonicity([1.0, 2.0, 2.0, 3.0]) == "increasing"
        assert monotonicity([2.0, 2.0]) == "flat"
        assert monotonicity([1.0, 3.0, 2.0]) == "mixed"

    def test_nan_ignored(self):
        assert monotonicity([5.0, float("nan"), 4.0]) == "decreasing"
        assert monotonicity([float("nan")]) == "flat"


class TestCurve:
    def test_sorted_by_axis_value(self):
        results = _results(list(reversed(POINTS)), AXIS)
        pts = curve(results, AXIS, "lulesh")
        assert [v for v, _ in pts] == [2048, 4096, 8192, 16384]
        assert [r for _, r in pts] == [5.0, 4.0, 1.5, 1.5]

    def test_unvaried_axis_falls_back_to_base(self):
        # An OFAT base point has no override for the axis; its response
        # must land on the base config's value, not vanish.
        base_pr = PointResult(
            point=SweepPoint(overrides=(), config=small_config(2)),
            runs=POINTS[0].runs,
        )
        axis = Axis("l1i.size_bytes", (4096,))
        results = _results([base_pr, _point(4096, 100, 400)], axis)
        pts = dict(curve(results, axis, "lulesh"))
        assert pts[small_config(2).l1i.size_bytes] == 5.0
        assert pts[4096] == 4.0

    def test_curve_report_monotone_row(self):
        results = _results(POINTS, AXIS)
        _title, headers, rows = curve_report(results, AXIS)
        assert headers == ["l1i.size_bytes", "lulesh"]
        assert rows[-1] == ["(monotone)", "decreasing"]


class TestTornado:
    def test_swing_and_shape(self):
        results = _results(POINTS, AXIS)
        _title, headers, rows = tornado(results)
        assert headers[0] == "Axis"
        (row,) = rows
        assert row[0] == "l1i.size_bytes"
        assert row[3] == pytest.approx(1.5)    # min response
        assert row[4] == pytest.approx(5.0)    # max response
        assert row[5] == pytest.approx(3.5)    # swing
        assert row[6] == "decreasing"

    def test_sorted_by_swing(self):
        flat_axis = Axis("cu.vrf_banks", (2, 4))
        flat_points = [
            _point(2, 100, 200, path="cu.vrf_banks"),
            _point(4, 100, 200, path="cu.vrf_banks"),
        ]
        results = SweepResults(
            sweep_id="t", base=small_config(2), axes=(AXIS, flat_axis),
            mode="grid", workloads=("lulesh",), isas=("hsail", "gcn3"),
            scale=0.5, seed=7, points=POINTS + flat_points,
        )
        rows = tornado(results)[2]
        assert rows[0][0] == "l1i.size_bytes"   # biggest swing on top
        assert rows[1][0] == "cu.vrf_banks"

    def test_all_failed_axis_is_nan_row(self):
        points = [_point(2048, 1, 1, failed=True),
                  _point(4096, 1, 1, failed=True)]
        axis = Axis("l1i.size_bytes", (2048, 4096))
        (row,) = tornado(_results(points, axis))[2]
        assert math.isnan(row[5])


class TestThreshold:
    def test_capacity_wall_found(self):
        results = _results(POINTS, AXIS)
        # 5.0 and 4.0 both exceed 2 x 1.5; the wall is the largest such.
        assert threshold(results, AXIS, "lulesh", factor=2.0) == 4096

    def test_no_wall_inside_range(self):
        results = _results(POINTS[2:], Axis("l1i.size_bytes",
                                            (8192, 16384)))
        assert threshold(results, AXIS, "lulesh", factor=2.0) is None

    def test_factor_moves_the_wall(self):
        results = _results(POINTS, AXIS)
        assert threshold(results, AXIS, "lulesh", factor=3.0) == 2048


class TestExports:
    @pytest.fixture()
    def results(self):
        return _results(POINTS + [_point(32768, 1, 1, failed=True)],
                        Axis("l1i.size_bytes",
                             (2048, 4096, 8192, 16384, 32768)))

    def test_text_renders_na_for_failed(self, results):
        out = io.StringIO()
        write_text(results, out)
        text = out.getvalue()
        assert "Tornado" in text and "Sensitivity curve" in text
        assert "n/a" in text
        assert "nan" not in text.lower()

    def test_markdown_tables(self, results):
        out = io.StringIO()
        write_markdown(results, out)
        text = out.getvalue()
        assert text.count("### ") >= 3
        assert "| Axis |" in text

    def test_csv_one_row_per_point_workload(self, results):
        out = io.StringIO()
        write_csv(results, out)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 1 + len(results.points)
        assert lines[0].startswith("point_id,workload,status")
        assert any(",n/a" in l for l in lines[1:])

    def test_json_is_valid_with_null_for_nan(self, results):
        out = io.StringIO()
        write_json(results, out)
        doc = json.loads(out.getvalue())
        assert doc["response"] == "ratio:ifetch_misses"
        assert doc["sweep_id"] == "test"
        curve_pts = doc["curves"]["l1i.size_bytes"]["lulesh"]
        assert [None, None] in [p for p in curve_pts] or \
            any(p[1] is None for p in curve_pts)

    def test_path_sink(self, results, tmp_path):
        target = tmp_path / "report.md"
        write_markdown(results, str(target))
        assert target.read_text().startswith("### ")

    def test_points_report_statuses(self, results):
        rows = points_report(results)[2]
        assert [r[1] for r in rows] == ["ok"] * 4 + ["failed"]
