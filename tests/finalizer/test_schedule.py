"""Scheduler-pass tests: waitcnt insertion, NOPs, reordering."""

from repro.finalizer.schedule import (
    insert_nops,
    insert_waitcnts,
    instr_reads,
    instr_writes,
    run_all,
    schedule_independent,
)
from repro.gcn3.isa import EXEC, Gcn3Instr, SImm, SReg, VCC, VReg


def v(idx, count=1):
    return VReg(idx, count=count)


def s(idx, count=1):
    return SReg(idx, count=count)


class TestDependencyExtraction:
    def test_reads_and_writes(self):
        instr = Gcn3Instr(opcode="v_add_u32", dest=v(3), srcs=(s(9), v(1)))
        assert ("x", "vcc") in instr_writes(instr)
        assert ("x", "exec") in instr_reads(instr)
        assert ("v", "p", "1") in instr_reads(instr)
        assert ("v", "p", "3") in instr_writes(instr)

    def test_scc_flags(self):
        cmp = Gcn3Instr(opcode="s_cmp_lt_u32", srcs=(s(9), SImm(4)))
        sel = Gcn3Instr(opcode="s_cselect_b32", dest=s(10),
                        srcs=(SImm(1), SImm(0)))
        assert ("x", "scc") in instr_writes(cmp)
        assert ("x", "scc") in instr_reads(sel)


class TestWaitcnt:
    def test_wait_inserted_before_use(self):
        instrs = [
            Gcn3Instr(opcode="flat_load_dword", dest=v(1), srcs=(v(2, 2),)),
            Gcn3Instr(opcode="v_add_u32", dest=v(3), srcs=(SImm(1), v(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        ops = [i.opcode for i in out]
        idx = ops.index("s_waitcnt")
        assert ops[idx - 1] == "flat_load_dword"
        assert ops[idx + 1] == "v_add_u32"
        assert out[idx].attrs["vmcnt"] == 0

    def test_independent_work_not_stalled(self):
        instrs = [
            Gcn3Instr(opcode="flat_load_dword", dest=v(1), srcs=(v(2, 2),)),
            Gcn3Instr(opcode="v_mov_b32", dest=v(5), srcs=(SImm(3),)),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        ops = [i.opcode for i in out]
        # only the final endpgm drain, nothing between load and mov
        assert ops[1] == "v_mov_b32"

    def test_overlapping_loads_wait_partially(self):
        instrs = [
            Gcn3Instr(opcode="flat_load_dword", dest=v(1), srcs=(v(8, 2),)),
            Gcn3Instr(opcode="flat_load_dword", dest=v(2), srcs=(v(10, 2),)),
            Gcn3Instr(opcode="v_add_u32", dest=v(3), srcs=(SImm(1), v(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        wait = next(i for i in out if i.opcode == "s_waitcnt")
        # waiting on the first load: one younger op may stay in flight
        assert wait.attrs["vmcnt"] == 1

    def test_smem_uses_lgkm(self):
        instrs = [
            Gcn3Instr(opcode="s_load_dword", dest=s(9), srcs=(s(4, 2),),
                      attrs={"offset": 0}),
            Gcn3Instr(opcode="s_add_u32", dest=s(10), srcs=(s(9), SImm(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        wait = next(i for i in out if i.opcode == "s_waitcnt")
        assert wait.attrs["lgkmcnt"] == 0
        assert "vmcnt" not in wait.attrs

    def test_store_drained_before_endpgm(self):
        instrs = [
            Gcn3Instr(opcode="flat_store_dword", srcs=(v(2, 2), v(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        assert out[1].opcode == "s_waitcnt"
        assert out[1].attrs["vmcnt"] == 0

    def test_explicit_waitcnt_clears_tracking(self):
        instrs = [
            Gcn3Instr(opcode="flat_load_dword", dest=v(1), srcs=(v(2, 2),)),
            Gcn3Instr(opcode="s_waitcnt", attrs={"vmcnt": 0, "lgkmcnt": 0}),
            Gcn3Instr(opcode="v_add_u32", dest=v(3), srcs=(SImm(1), v(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        assert [i.opcode for i in out].count("s_waitcnt") == 1

    def test_label_moves_to_wait(self):
        instrs = [
            Gcn3Instr(opcode="flat_load_dword", dest=v(1), srcs=(v(2, 2),)),
            Gcn3Instr(opcode="v_add_u32", dest=v(3), srcs=(SImm(1), v(1)),
                      attrs={"labels": ["L0"]}),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = insert_waitcnts(instrs)
        wait = next(i for i in out if i.opcode == "s_waitcnt")
        assert wait.attrs.get("labels") == ["L0"]


class TestNops:
    def test_nop_after_transcendental_dependence(self):
        instrs = [
            Gcn3Instr(opcode="v_rcp_f32", dest=v(1), srcs=(v(0),)),
            Gcn3Instr(opcode="v_mul_f32", dest=v(2), srcs=(v(1), v(0))),
        ]
        out = insert_nops(instrs)
        assert [i.opcode for i in out] == ["v_rcp_f32", "s_nop", "v_mul_f32"]

    def test_no_nop_when_independent(self):
        instrs = [
            Gcn3Instr(opcode="v_rcp_f32", dest=v(1), srcs=(v(0),)),
            Gcn3Instr(opcode="v_mul_f32", dest=v(3), srcs=(v(4), v(5))),
        ]
        out = insert_nops(instrs)
        assert [i.opcode for i in out] == ["v_rcp_f32", "v_mul_f32"]


class TestReordering:
    def test_separates_dependent_pair(self):
        """An independent instruction is hoisted between def and use."""
        instrs = [
            Gcn3Instr(opcode="v_mov_b32", dest=v(1), srcs=(SImm(1),)),
            Gcn3Instr(opcode="v_add_u32", dest=v(2), srcs=(SImm(1), v(1))),
            Gcn3Instr(opcode="v_mov_b32", dest=v(5), srcs=(SImm(9),)),
        ]
        out = schedule_independent(instrs)
        ops_dests = [(i.opcode, repr(i.dest)) for i in out]
        assert ops_dests[1] == ("v_mov_b32", "v5")

    def test_memory_order_preserved(self):
        instrs = [
            Gcn3Instr(opcode="flat_store_dword", srcs=(v(2, 2), v(1))),
            Gcn3Instr(opcode="flat_load_dword", dest=v(3), srcs=(v(4, 2),)),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = schedule_independent(instrs)
        ops = [i.opcode for i in out]
        assert ops.index("flat_store_dword") < ops.index("flat_load_dword")

    def test_boundary_instruction_stays_last(self):
        instrs = [
            Gcn3Instr(opcode="v_mov_b32", dest=v(1), srcs=(SImm(1),)),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = schedule_independent(instrs)
        assert out[-1].opcode == "s_endpgm"

    def test_exec_write_is_barrier(self):
        instrs = [
            Gcn3Instr(opcode="v_mov_b32", dest=v(1), srcs=(SImm(1),)),
            Gcn3Instr(opcode="s_mov_b64", dest=EXEC, srcs=(s(10, 2),)),
            Gcn3Instr(opcode="v_mov_b32", dest=v(2), srcs=(SImm(2),)),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = schedule_independent(instrs)
        ops = [(i.opcode, repr(i.dest)) for i in out]
        # the v_mov writing v2 must not cross the exec write
        assert ops.index(("v_mov_b32", "v2")) > ops.index(("s_mov_b64", "exec"))

    def test_labeled_instruction_starts_new_window(self):
        instrs = [
            Gcn3Instr(opcode="v_mov_b32", dest=v(1), srcs=(SImm(1),)),
            Gcn3Instr(opcode="v_mov_b32", dest=v(2), srcs=(SImm(2),),
                      attrs={"labels": ["LOOP0"]}),
            Gcn3Instr(opcode="v_mov_b32", dest=v(3), srcs=(SImm(3),)),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = schedule_independent(instrs)
        # the labeled instruction must not move before the first one
        labeled_pos = next(i for i, x in enumerate(out)
                           if x.attrs.get("labels"))
        assert labeled_pos == 1

    def test_vcc_chain_order_kept(self):
        instrs = [
            Gcn3Instr(opcode="v_add_u32", dest=v(2), srcs=(v(0), v(1))),
            Gcn3Instr(opcode="v_addc_u32", dest=v(3), srcs=(v(4), v(5))),
            Gcn3Instr(opcode="v_add_u32", dest=v(6), srcs=(v(7), v(8))),
        ]
        out = schedule_independent(instrs)
        ops = [(i.opcode, repr(i.dest)) for i in out]
        # the addc must still consume the FIRST add's carry
        assert ops.index(("v_addc_u32", "v3")) > ops.index(("v_add_u32", "v2"))
        assert ops.index(("v_add_u32", "v6")) > ops.index(("v_addc_u32", "v3"))


class TestPipeline:
    def test_run_all_is_composition(self):
        instrs = [
            Gcn3Instr(opcode="flat_load_dword", dest=v(1), srcs=(v(2, 2),)),
            Gcn3Instr(opcode="v_add_u32", dest=v(3), srcs=(SImm(1), v(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        out = run_all(instrs)
        ops = [i.opcode for i in out]
        assert "s_waitcnt" in ops
        assert ops[-1] == "s_endpgm"
