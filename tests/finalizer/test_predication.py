"""EXEC-mask predication and scalar-branch lowering tests (Figure 3c)."""

import pytest

from repro.core import Session
from repro.gcn3.isa import EXEC
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def finalize_kernel(build, params=(("p", DType.U64), ("n", DType.U32))):
    kb = KernelBuilder("k", list(params))
    build(kb)
    return Session().compile(kb.finish()).gcn3


def opcodes(kernel):
    return [i.opcode for i in kernel.instrs]


def divergent_if(kb):
    tid = kb.wi_abs_id()
    with kb.If(kb.lt(tid, kb.kernarg("n"))):
        kb.store(Segment.GLOBAL, kb.kernarg("p"), tid)


def divergent_if_else(kb):
    tid = kb.wi_abs_id()
    with kb.If(kb.lt(tid, kb.kernarg("n"))) as br:
        kb.store(Segment.GLOBAL, kb.kernarg("p"), tid)
        with br.Else():
            kb.store(Segment.GLOBAL, kb.kernarg("p") + 4, tid)


class TestDivergentIf:
    def test_saveexec_pattern(self):
        ops = opcodes(finalize_kernel(divergent_if))
        assert "s_and_saveexec_b64" in ops
        assert "s_cbranch_execz" in ops

    def test_exec_restored_at_merge(self):
        kernel = finalize_kernel(divergent_if)
        restores = [i for i in kernel.instrs
                    if i.opcode == "s_mov_b64" and i.dest == EXEC]
        assert len(restores) == 1

    def test_bypass_branch_targets_restore(self):
        kernel = finalize_kernel(divergent_if)
        bypass = next(i for i in kernel.instrs if i.opcode == "s_cbranch_execz")
        target = kernel.instrs[bypass.target]
        assert target.opcode == "s_mov_b64" and target.dest == EXEC

    def test_no_unconditional_branches(self):
        """Figure 3c: predication needs no jumps on the main path."""
        ops = opcodes(finalize_kernel(divergent_if))
        assert "s_branch" not in ops


class TestDivergentIfElse:
    def test_else_mask_via_xor(self):
        kernel = finalize_kernel(divergent_if_else)
        xors = [i for i in kernel.instrs if i.opcode == "s_xor_b64"
                and EXEC in i.srcs]
        assert len(xors) == 1

    def test_two_exec_bypass_branches(self):
        ops = opcodes(finalize_kernel(divergent_if_else))
        assert ops.count("s_cbranch_execz") == 2

    def test_two_exec_updates_and_final_restore(self):
        kernel = finalize_kernel(divergent_if_else)
        exec_movs = [i for i in kernel.instrs
                     if i.opcode == "s_mov_b64" and i.dest == EXEC]
        # one to flip to the else mask, one to restore at the merge
        assert len(exec_movs) == 2

    def test_both_paths_have_stores(self):
        ops = opcodes(finalize_kernel(divergent_if_else))
        assert ops.count("flat_store_dword") == 2


class TestUniformIf:
    def build(self, kb):
        n = kb.kernarg("n")
        with kb.If(kb.lt(n, 16)) as br:
            kb.store(Segment.GLOBAL, kb.kernarg("p"), n)
            with br.Else():
                kb.store(Segment.GLOBAL, kb.kernarg("p") + 4, n)

    def test_uses_scalar_branches(self):
        ops = opcodes(finalize_kernel(self.build))
        assert "s_cmp_lg_u32" in ops
        assert "s_cbranch_scc0" in ops
        assert "s_branch" in ops  # then-path jumps over the else

    def test_no_exec_manipulation(self):
        kernel = finalize_kernel(self.build)
        assert "s_and_saveexec_b64" not in opcodes(kernel)
        assert not any(i.dest == EXEC for i in kernel.instrs)


class TestLoops:
    def test_uniform_loop_backedge(self):
        def build(kb):
            acc = kb.var(DType.U32, 0)
            with kb.for_range(0, kb.kernarg("n")) as i:
                kb.assign(acc, acc + i)
            kb.store(Segment.GLOBAL, kb.kernarg("p"), acc)

        kernel = finalize_kernel(build)
        ops = opcodes(kernel)
        assert "s_cbranch_scc1" in ops
        backedge = next(i for i in kernel.instrs if i.opcode == "s_cbranch_scc1")
        assert backedge.target < kernel.instrs.index(backedge)

    def test_divergent_loop_exec_pattern(self):
        def build(kb):
            tid = kb.wi_abs_id()
            i = kb.var(DType.U32, 0)
            with kb.Loop() as loop:
                kb.assign(i, i + 1)
                loop.continue_if(kb.lt(i, tid))
            kb.store(Segment.GLOBAL, kb.kernarg("p") + kb.cvt(tid, DType.U64),
                     i)

        kernel = finalize_kernel(build)
        ops = opcodes(kernel)
        # save exec, AND it down each iteration, loop while lanes remain,
        # restore at exit
        assert "s_cbranch_execnz" in ops
        ands = [i for i in kernel.instrs if i.opcode == "s_and_b64"
                and i.dest == EXEC]
        assert len(ands) == 1
        restores = [i for i in kernel.instrs
                    if i.opcode == "s_mov_b64" and i.dest == EXEC]
        assert len(restores) == 1

    def test_nested_divergent_if_in_uniform_loop(self):
        def build(kb):
            tid = kb.wi_abs_id()
            acc = kb.var(DType.U32, 0)
            with kb.for_range(0, 4) as i:
                with kb.If(kb.lt(tid, i * 16)):
                    kb.assign(acc, acc + 1)
            kb.store(Segment.GLOBAL, kb.kernarg("p") + kb.cvt(tid, DType.U64),
                     acc)

        kernel = finalize_kernel(build)
        ops = opcodes(kernel)
        assert "s_and_saveexec_b64" in ops      # inner predication
        assert "s_cbranch_scc1" in ops          # outer scalar backedge


class TestStructuralInvariants:
    @pytest.mark.parametrize("build", [divergent_if, divergent_if_else])
    def test_all_branch_targets_resolved(self, build):
        kernel = finalize_kernel(build)
        for instr in kernel.instrs:
            if instr.is_branch:
                assert instr.target is not None
                assert 0 <= instr.target < len(kernel.instrs)

    def test_ends_with_endpgm(self):
        kernel = finalize_kernel(divergent_if)
        assert kernel.instrs[-1].opcode == "s_endpgm"
