"""End-to-end finalizer invariants across all workload kernels."""

import pytest

from repro.gcn3.isa import MAX_SGPRS, MAX_VGPRS, SReg, VReg
from repro.workloads import all_workloads


@pytest.fixture(scope="module")
def all_kernels():
    kernels = []
    for wl in all_workloads(scale=0.1):
        for name, dual in wl.kernels().items():
            kernels.append((f"{wl.name}/{name}", dual))
    return kernels


class TestInvariants:
    def test_register_budgets(self, all_kernels):
        for name, dual in all_kernels:
            g = dual.gcn3
            assert 0 < g.vgprs_used <= MAX_VGPRS, name
            assert 0 < g.sgprs_used <= MAX_SGPRS, name

    def test_no_virtual_operands(self, all_kernels):
        for name, dual in all_kernels:
            for instr in dual.gcn3.instrs:
                for op in (instr.dest, *instr.srcs):
                    if isinstance(op, (SReg, VReg)):
                        assert not op.virtual, (name, instr)

    def test_branch_targets_resolved(self, all_kernels):
        for name, dual in all_kernels:
            n = len(dual.gcn3.instrs)
            for instr in dual.gcn3.instrs:
                if instr.is_branch:
                    assert instr.target is not None, (name, instr)
                    assert 0 <= instr.target < n, (name, instr)

    def test_ends_with_endpgm(self, all_kernels):
        for name, dual in all_kernels:
            assert dual.gcn3.instrs[-1].opcode == "s_endpgm", name

    def test_code_expansion(self, all_kernels):
        """Every kernel expands; the suite-wide spread matches the paper's
        1.5x-3x band (FFT-like kernels may sit below)."""
        ratios = []
        for name, dual in all_kernels:
            ratio = dual.expansion_ratio
            assert ratio > 1.0, (name, ratio)
            ratios.append(ratio)
        assert max(ratios) >= 2.0

    def test_footprint_metadata_consistent(self, all_kernels):
        for name, dual in all_kernels:
            g = dual.gcn3
            assert g.code_bytes == sum(i.size_bytes for i in g.instrs), name
            assert g.kernarg_bytes == dual.hsail.kernarg_bytes, name
            assert g.group_bytes == dual.hsail.group_bytes, name

    def test_waitcnt_before_every_smem_consumer(self, all_kernels):
        """An s_load result must not be consumed before an lgkm wait."""
        for name, dual in all_kernels:
            pending: set = set()
            for instr in dual.gcn3.instrs:
                if instr.opcode == "s_waitcnt":
                    if instr.attrs.get("lgkmcnt") == 0:
                        pending.clear()
                    continue
                reads = set(instr.sgpr_reads())
                assert not (reads & pending), (name, instr)
                if instr.opcode.startswith("s_load"):
                    pending.update(instr.sgpr_writes())

    def test_sgpr_pairs_even(self, all_kernels):
        for name, dual in all_kernels:
            for instr in dual.gcn3.instrs:
                for op in (instr.dest, *instr.srcs):
                    if isinstance(op, (SReg, VReg)) and op.count == 2:
                        assert op.index % 2 == 0, (name, instr)

    def test_dispatch_values_come_from_abi_registers(self, all_kernels):
        """Kernels read launch state only via the ABI: s[4:5] packet,
        s[6:7] kernargs, s8 workgroup id, v0 lane id."""
        for name, dual in all_kernels:
            reads_abi = False
            for instr in dual.gcn3.instrs:
                for op in instr.srcs:
                    if isinstance(op, SReg) and op.index in (4, 6, 8):
                        reads_abi = True
                    if isinstance(op, VReg) and op.index == 0:
                        reads_abi = True
            assert reads_abi, name
