"""Instruction-selection tests: the paper's Tables 1, 2 and 3."""

import pytest

from repro.core import Session
from repro.finalizer.lowering import PACKET_GRID_SIZE_OFFSET, PACKET_WG_SIZE_OFFSET
from repro.gcn3.isa import SImm, SReg, VReg
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def finalize_kernel(build, params=(("p", DType.U64), ("n", DType.U32))):
    kb = KernelBuilder("k", list(params))
    build(kb)
    return Session().compile(kb.finish()).gcn3


def opcodes(kernel):
    return [i.opcode for i in kernel.instrs]


class TestTable1WorkitemAbsId:
    """1 HSAIL instruction -> the 5-instruction ABI sequence of Table 1."""

    def get_kernel(self):
        def build(kb):
            tid = kb.wi_abs_id()
            kb.store(Segment.GLOBAL, kb.kernarg("p") + kb.cvt(tid, DType.U64),
                     tid)

        return finalize_kernel(build)

    def test_sequence_present_in_order(self):
        ops = opcodes(self.get_kernel())
        sequence = ["s_load_dword", "s_waitcnt", "s_bfe_u32", "s_mul_i32",
                    "v_add_u32"]
        positions = []
        start = 0
        for op in sequence:
            positions.append(ops.index(op, start))
            start = positions[-1] + 1
        assert positions == sorted(positions)

    def test_loads_packet_via_dispatch_ptr(self):
        kernel = self.get_kernel()
        load = next(i for i in kernel.instrs if i.opcode == "s_load_dword")
        assert load.srcs[0] == SReg(4, count=2)     # s[4:5] = AQL packet
        assert load.attrs["offset"] == PACKET_WG_SIZE_OFFSET

    def test_bfe_extracts_low_16_bits(self):
        kernel = self.get_kernel()
        bfe = next(i for i in kernel.instrs if i.opcode == "s_bfe_u32")
        assert isinstance(bfe.srcs[1], SImm)
        assert bfe.srcs[1].pattern == 0x100000  # offset 0, width 16

    def test_mul_uses_workgroup_id_sgpr(self):
        kernel = self.get_kernel()
        mul = next(i for i in kernel.instrs if i.opcode == "s_mul_i32")
        assert SReg(8) in mul.srcs

    def test_final_add_uses_v0(self):
        kernel = self.get_kernel()
        add = next(i for i in kernel.instrs if i.opcode == "v_add_u32")
        assert VReg(0) in add.srcs


class TestTable2KernargAccess:
    def test_pointer_arg_moves_base_into_vgprs(self):
        """Table 2: v_mov v, s6 ; v_mov v, s7 ; flat_load."""
        def build(kb):
            p = kb.kernarg("p")
            kb.store(Segment.GLOBAL, p, kb.const(DType.U32, 1))

        kernel = finalize_kernel(build)
        movs = [i for i in kernel.instrs if i.opcode == "v_mov_b32"
                and isinstance(i.srcs[0], SReg)
                and i.srcs[0].index in (6, 7)]
        assert len(movs) == 2
        assert "flat_load_dwordx2" in opcodes(kernel)

    def test_u32_arg_uses_scalar_load(self):
        def build(kb):
            n = kb.kernarg("n")
            with kb.If(kb.lt(n, 5)):
                kb.var(DType.U32, 1)

        kernel = finalize_kernel(build)
        loads = [i for i in kernel.instrs if i.opcode == "s_load_dword"
                 and i.srcs and i.srcs[0] == SReg(6, count=2)]
        assert len(loads) == 1
        assert loads[0].attrs["offset"] == 8  # n's kernarg offset

    def test_nonzero_pointer_offset_adds_scalar_base(self):
        def build(kb):
            q = kb.kernarg("q")  # offset 8
            kb.store(Segment.GLOBAL, q, kb.const(DType.U32, 1))

        kernel = finalize_kernel(
            build, params=(("p", DType.U64), ("q", DType.U64)))
        assert "s_add_u32" in opcodes(kernel)
        assert "s_addc_u32" in opcodes(kernel)


class TestTable3Division:
    def test_f64_division_expands_to_newton_raphson(self):
        def build(kb):
            a = kb.load(Segment.GLOBAL, kb.kernarg("p"), DType.F64)
            b = kb.load(Segment.GLOBAL, kb.kernarg("p") + 8, DType.F64)
            kb.store(Segment.GLOBAL, kb.kernarg("p") + 16, a / b)

        ops = opcodes(finalize_kernel(build))
        assert ops.count("v_div_scale_f64") == 2
        assert ops.count("v_rcp_f64") == 1
        assert ops.count("v_fma_f64") == 5
        assert ops.count("v_mul_f64") == 1
        assert ops.count("v_div_fmas_f64") == 1
        assert ops.count("v_div_fixup_f64") == 1

    def test_f32_division_expands(self):
        def build(kb):
            a = kb.load(Segment.GLOBAL, kb.kernarg("p"), DType.F32)
            kb.store(Segment.GLOBAL, kb.kernarg("p") + 8,
                     kb.fdiv(kb.const(DType.F32, 1.0), a))

        ops = opcodes(finalize_kernel(build))
        assert ops.count("v_div_scale_f32") == 2
        assert ops.count("v_div_fixup_f32") == 1

    def test_fma_negation_modifiers(self):
        def build(kb):
            a = kb.load(Segment.GLOBAL, kb.kernarg("p"), DType.F64)
            kb.store(Segment.GLOBAL, kb.kernarg("p") + 16, a / a)

        kernel = finalize_kernel(build)
        neg_fmas = [i for i in kernel.instrs if i.opcode == "v_fma_f64"
                    and i.attrs.get("neg")]
        assert len(neg_fmas) >= 2  # the refinement steps negate src0


class TestScalarVsVectorSelection:
    def test_uniform_int_math_on_salu(self):
        def build(kb):
            n = kb.kernarg("n")
            m = (n + 3) * 5
            with kb.If(kb.lt(m, 100)):
                kb.var(DType.U32, 0)

        ops = opcodes(finalize_kernel(build))
        assert "s_add_u32" in ops
        assert "s_mul_i32" in ops

    def test_divergent_int_math_on_valu(self):
        def build(kb):
            tid = kb.wi_abs_id()
            off = kb.cvt(tid * 4, DType.U64)
            kb.store(Segment.GLOBAL, kb.kernarg("p") + off, tid)

        ops = opcodes(finalize_kernel(build))
        assert "v_mul_lo_u32" in ops

    def test_u64_add_is_two_instructions(self):
        def build(kb):
            tid = kb.wi_abs_id()
            addr = kb.kernarg("p") + kb.cvt(tid, DType.U64)
            kb.store(Segment.GLOBAL, addr, tid)

        ops = opcodes(finalize_kernel(build))
        assert "v_add_u32" in ops and "v_addc_u32" in ops

    def test_u64_pow2_mul_becomes_shift(self):
        def build(kb):
            tid = kb.wi_abs_id()
            addr = kb.kernarg("p") + kb.cvt(tid, DType.U64) * 8
            kb.store(Segment.GLOBAL, addr, tid)

        ops = opcodes(finalize_kernel(build))
        assert "v_lshlrev_b64" in ops

    def test_integer_mad_expands(self):
        def build(kb):
            tid = kb.wi_abs_id()
            v = kb.mad(tid, kb.kernarg("n"), 7)
            kb.store(Segment.GLOBAL, kb.kernarg("p") + kb.cvt(v, DType.U64), v)

        ops = opcodes(finalize_kernel(build))
        assert "v_mul_lo_u32" in ops  # mad = mul + add

    def test_vop2_legalization_moves_sgpr_src1(self):
        """v_sub with a uniform subtrahend needs a v_mov (src1 must be VGPR)."""
        def build(kb):
            tid = kb.wi_abs_id()
            n = kb.kernarg("n")
            d = tid - n  # divergent - uniform, not commutative
            kb.store(Segment.GLOBAL, kb.kernarg("p") + kb.cvt(d, DType.U64), d)

        kernel = finalize_kernel(build)
        subs = [i for i in kernel.instrs if i.opcode == "v_sub_u32"]
        assert subs and all(isinstance(i.srcs[1], VReg) for i in subs)

    def test_predicate_logic_on_scalar_unit(self):
        def build(kb):
            tid = kb.wi_abs_id()
            n = kb.kernarg("n")
            both = kb.pred_and(kb.lt(tid, n), kb.gt(tid, 2))
            with kb.If(both):
                kb.var(DType.U32, 1)

        ops = opcodes(finalize_kernel(build))
        assert "s_and_b64" in ops  # mask logic runs on the SALU


class TestPrivateSegment:
    def test_frame_address_materialization(self):
        """Private access computes base + absid*stride (paper §III.A.2)."""
        def build(kb):
            s = kb.private_scratch(8)
            kb.store(Segment.PRIVATE, s, kb.wi_abs_id())

        kernel = finalize_kernel(build)
        ops = opcodes(kernel)
        # stride multiply against descriptor register s2
        muls = [i for i in kernel.instrs if i.opcode == "v_mul_lo_u32"
                and SReg(2) in i.srcs]
        assert muls
        assert "flat_store_dword" in ops

    def test_spill_area_offset_applied(self):
        def build(kb):
            kb.private_scratch(16)
            s = kb.spill_scratch(4)
            kb.store(Segment.SPILL, s, kb.wi_abs_id())

        kernel = finalize_kernel(build)
        # the spill area begins after the 16B private area
        adds = [i for i in kernel.instrs if i.opcode == "v_add_u32"
                and any(isinstance(s, SImm) and s.pattern == 16 for s in i.srcs)]
        assert adds


class TestBarrier:
    def test_barrier_waits_for_memory(self):
        def build(kb):
            kb.store(Segment.GLOBAL, kb.kernarg("p"), kb.wi_abs_id())
            kb.barrier()

        kernel = finalize_kernel(build)
        ops = opcodes(kernel)
        b = ops.index("s_barrier")
        wait = kernel.instrs[b - 1]
        assert wait.opcode == "s_waitcnt"
        assert wait.attrs.get("vmcnt") == 0
        assert wait.attrs.get("lgkmcnt") == 0


class TestGridSize:
    def test_gridsize_reads_packet(self):
        def build(kb):
            g = kb.grid_size()
            with kb.If(kb.lt(g, 100)):
                kb.var(DType.U32, 1)

        kernel = finalize_kernel(build)
        loads = [i for i in kernel.instrs if i.opcode == "s_load_dword"
                 and i.attrs.get("offset") == PACKET_GRID_SIZE_OFFSET]
        assert loads
