"""GCN3 register allocation and spill tests."""

import pytest

from repro.core import Session
from repro.gcn3 import abi
from repro.gcn3.isa import MAX_SGPRS, MAX_VGPRS, SReg, VReg
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def finalize_kernel(build, params=(("p", DType.U64), ("n", DType.U32))):
    kb = KernelBuilder("k", list(params))
    build(kb)
    return Session().compile(kb.finish()).gcn3


def build_pressure(n_live):
    """A kernel with n_live simultaneously-live f32 values."""

    def build(kb):
        p = kb.kernarg("p")
        values = [kb.load(Segment.GLOBAL, p + (4 * i), DType.F32)
                  for i in range(n_live)]
        acc = kb.var(DType.F32, 0.0)
        for v in values:
            kb.assign(acc, acc + v)
        kb.store(Segment.GLOBAL, p, acc)

    return build


class TestBudgets:
    def test_simple_kernel_within_limits(self):
        kernel = finalize_kernel(build_pressure(8))
        assert kernel.vgprs_used <= MAX_VGPRS
        assert kernel.sgprs_used <= MAX_SGPRS

    def test_abi_registers_reserved(self):
        kernel = finalize_kernel(build_pressure(4))
        for instr in kernel.instrs:
            for idx in instr.sgpr_writes():
                assert idx >= abi.FIRST_FREE_SGPR, instr
            for idx in instr.vgpr_writes():
                assert idx >= abi.FIRST_FREE_VGPR, instr

    def test_no_virtual_registers_remain(self):
        kernel = finalize_kernel(build_pressure(8))
        for instr in kernel.instrs:
            for op in (instr.dest, *instr.srcs):
                if isinstance(op, (SReg, VReg)):
                    assert not op.virtual, instr

    def test_pairs_even_aligned(self):
        kernel = finalize_kernel(build_pressure(4))
        for instr in kernel.instrs:
            for op in (instr.dest, *instr.srcs):
                if isinstance(op, (SReg, VReg)) and op.count == 2:
                    assert op.index % 2 == 0, instr


class TestSpilling:
    def test_high_pressure_spills_to_scratch(self):
        kernel = finalize_kernel(build_pressure(300))
        ops = [i.opcode for i in kernel.instrs]
        assert "scratch_store_dword" in ops
        assert "scratch_load_dword" in ops
        assert kernel.scratch_bytes > 0
        assert kernel.vgprs_used <= MAX_VGPRS

    def test_no_spill_under_budget(self):
        kernel = finalize_kernel(build_pressure(60))
        ops = [i.opcode for i in kernel.instrs]
        assert "scratch_store_dword" not in ops
        assert kernel.scratch_bytes == 0

    def test_spilled_kernel_still_correct(self):
        """Spill traffic must not change results (functional check)."""
        import numpy as np

        from repro.core import run_dispatch_functional
        from repro.runtime.process import GpuProcess

        kb = KernelBuilder("spilly", [("p", DType.U64), ("out", DType.U64)])
        p = kb.kernarg("p")
        values = [kb.load(Segment.GLOBAL, p + (4 * i), DType.F32)
                  for i in range(300)]
        acc = kb.var(DType.F32, 0.0)
        for v in values:
            kb.assign(acc, acc + v)
        tid = kb.wi_abs_id()
        kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4,
                 acc)
        dual = Session().compile(kb.finish())
        assert dual.gcn3.scratch_bytes > 0

        data = np.arange(300, dtype=np.float32) * 0.5
        results = {}
        for isa in ("hsail", "gcn3"):
            proc = GpuProcess(isa)
            pa = proc.upload(data)
            out = proc.alloc_buffer(4 * 64)
            proc.dispatch(dual.for_isa(isa), grid=64, wg=64,
                          kernargs=[pa, out])
            run_dispatch_functional(proc, proc.dispatches[0])
            results[isa] = proc.download(out, np.float32, 64)
        assert np.array_equal(results["hsail"], results["gcn3"])

    def test_spill_offsets_after_dsl_areas(self):
        def build(kb):
            kb.private_scratch(32)
            kb.spill_scratch(16)
            p = kb.kernarg("p")
            values = [kb.load(Segment.GLOBAL, p + (4 * i), DType.F32)
                      for i in range(300)]
            acc = kb.var(DType.F32, 0.0)
            for v in values:
                kb.assign(acc, acc + v)
            kb.store(Segment.GLOBAL, p, acc)

        kernel = finalize_kernel(build)
        scratch_ops = [i for i in kernel.instrs
                       if i.opcode.startswith("scratch_")]
        assert scratch_ops
        # regalloc scratch begins after the DSL-visible 48 bytes
        assert all(i.attrs["offset"] >= 48 for i in scratch_ops)
