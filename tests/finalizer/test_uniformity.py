"""Uniformity (scalarization) analysis tests."""

from repro.finalizer.uniformity import analyze, imm_pow2_shift
from repro.hsail.codegen import compile_hsail
from repro.hsail.isa import Imm
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def analyze_kernel(build):
    kb = KernelBuilder("k", [("p", DType.U64), ("n", DType.U32)])
    build(kb)
    kernel = compile_hsail(kb.finish())
    return kernel, analyze(kernel)


def divergent_dests(kernel, info, opcode):
    out = []
    for instr in kernel.virtual_instrs:
        if instr.opcode == opcode and instr.dest is not None:
            out.append(info.is_divergent(instr.dest.index))
    return out


class TestSeeds:
    def test_workitem_ids_divergent(self):
        kernel, info = analyze_kernel(lambda kb: kb.wi_abs_id())
        assert divergent_dests(kernel, info, "workitemabsid") == [True]

    def test_workgroup_queries_uniform(self):
        def build(kb):
            kb.wg_id()
            kb.wg_size()

        kernel, info = analyze_kernel(build)
        assert divergent_dests(kernel, info, "workgroupid") == [False]
        assert divergent_dests(kernel, info, "workgroupsize") == [False]

    def test_u32_kernarg_uniform(self):
        kernel, info = analyze_kernel(lambda kb: kb.kernarg("n"))
        loads = [i for i in kernel.virtual_instrs if i.opcode == "ld"]
        assert not info.is_divergent(loads[0].dest.index)

    def test_pointer_kernarg_divergent(self):
        """Pointer args take the FLAT path (Table 2) -> vector values."""
        kernel, info = analyze_kernel(lambda kb: kb.kernarg("p"))
        loads = [i for i in kernel.virtual_instrs if i.opcode == "ld"]
        assert info.is_divergent(loads[0].dest.index)

    def test_global_load_divergent(self):
        def build(kb):
            kb.load(Segment.GLOBAL, kb.kernarg("p"), DType.U32)

        kernel, info = analyze_kernel(build)
        global_loads = [i for i in kernel.virtual_instrs
                        if i.opcode == "ld" and i.segment == Segment.GLOBAL]
        assert info.is_divergent(global_loads[0].dest.index)

    def test_float_alu_divergent(self):
        """The scalar unit has no float pipeline (paper §V.D)."""
        def build(kb):
            a = kb.var(DType.F32, 1.0)
            kb.add(a, 2.0)

        kernel, info = analyze_kernel(build)
        adds = [i for i in kernel.virtual_instrs if i.opcode == "add"]
        assert info.is_divergent(adds[0].dest.index)

    def test_uniform_integer_stays_uniform(self):
        def build(kb):
            n = kb.kernarg("n")
            kb.add(n, 5)

        kernel, info = analyze_kernel(build)
        adds = [i for i in kernel.virtual_instrs if i.opcode == "add"]
        assert not info.is_divergent(adds[0].dest.index)


class TestPropagation:
    def test_divergence_flows_through_operands(self):
        def build(kb):
            tid = kb.wi_abs_id()
            n = kb.kernarg("n")
            kb.add(tid, n)  # divergent + uniform -> divergent

        kernel, info = analyze_kernel(build)
        adds = [i for i in kernel.virtual_instrs if i.opcode == "add"]
        assert info.is_divergent(adds[0].dest.index)

    def test_defs_under_divergent_control_divergent(self):
        def build(kb):
            tid = kb.wi_abs_id()
            v = kb.var(DType.U32, 0)
            with kb.If(kb.lt(tid, kb.kernarg("n"))):
                kb.assign(v, 7)  # constant, but lane-dependent whether set

        kernel, info = analyze_kernel(build)
        movs = [i for i in kernel.virtual_instrs if i.opcode == "mov"]
        # the assignment inside the divergent if makes v divergent
        assert any(info.is_divergent(m.dest.index) for m in movs)

    def test_defs_under_uniform_control_stay_uniform(self):
        def build(kb):
            n = kb.kernarg("n")
            v = kb.var(DType.U32, 0)
            with kb.If(kb.lt(n, 5)):
                kb.assign(v, 7)

        kernel, info = analyze_kernel(build)
        movs = [i for i in kernel.virtual_instrs if i.opcode == "mov"]
        assert all(not info.is_divergent(m.dest.index) for m in movs)


class TestBranchClassification:
    def test_divergent_branch(self):
        def build(kb):
            tid = kb.wi_abs_id()
            with kb.If(kb.lt(tid, kb.kernarg("n"))):
                kb.var(DType.U32, 1)

        kernel, info = analyze_kernel(build)
        assert list(info.divergent_branch.values()) == [True]

    def test_uniform_branch(self):
        def build(kb):
            n = kb.kernarg("n")
            with kb.If(kb.lt(n, 4)):
                kb.var(DType.U32, 1)

        kernel, info = analyze_kernel(build)
        assert list(info.divergent_branch.values()) == [False]

    def test_uniform_loop(self):
        def build(kb):
            acc = kb.var(DType.U32, 0)
            with kb.for_range(0, kb.kernarg("n")) as i:
                kb.assign(acc, acc + i)

        kernel, info = analyze_kernel(build)
        assert list(info.divergent_branch.values()) == [False]

    def test_divergent_loop_makes_counter_divergent(self):
        def build(kb):
            tid = kb.wi_abs_id()
            i = kb.var(DType.U32, 0)
            with kb.Loop() as loop:
                kb.assign(i, i + 1)
                loop.continue_if(kb.lt(i, tid))

        kernel, info = analyze_kernel(build)
        assert list(info.divergent_branch.values()) == [True]
        movs = [m for m in kernel.virtual_instrs if m.opcode == "mov"]
        assert all(info.is_divergent(m.dest.index) for m in movs)


class TestHelpers:
    def test_imm_pow2_shift(self):
        assert imm_pow2_shift(Imm(8, DType.U64)) == 3
        assert imm_pow2_shift(Imm(1, DType.U64)) == 0
        assert imm_pow2_shift(Imm(6, DType.U64)) is None
        assert imm_pow2_shift(Imm(0, DType.U64)) is None
        assert imm_pow2_shift("not an imm") is None
