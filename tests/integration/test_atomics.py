"""Global-atomic extension tests (both ISAs, both engines)."""

import numpy as np
import pytest

from repro.common.config import small_config
from repro.common.errors import KernelBuildError
from repro.core import Session, run_dispatch_functional
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def build_histogram(bins):
    """counts[x[i] % bins] += 1, old value recorded per work-item."""
    kb = KernelBuilder(
        "hist", [("x", DType.U64), ("counts", DType.U64), ("old", DType.U64)],
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    value = kb.load(Segment.GLOBAL, kb.kernarg("x") + off, DType.U32)
    bin_idx = value & (bins - 1)
    slot = kb.kernarg("counts") + kb.cvt(bin_idx, DType.U64) * 4
    old = kb.atomic_add(Segment.GLOBAL, slot, 1)
    kb.store(Segment.GLOBAL, kb.kernarg("old") + off, old)
    return Session().compile(kb.finish())


BINS = 8
N = 256


@pytest.fixture(scope="module")
def hist_dual():
    return build_histogram(BINS)


def stage(dual, isa, data):
    proc = GpuProcess(isa)
    x = proc.upload(data)
    counts = proc.upload(np.zeros(BINS, dtype=np.uint32))
    old = proc.alloc_buffer(4 * N)
    proc.dispatch(dual.for_isa(isa), grid=N, wg=64, kernargs=[x, counts, old])
    return proc, counts, old


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(11).integers(0, 2**16, N).astype(np.uint32)


class TestFunctional:
    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_histogram_counts(self, hist_dual, data, isa):
        proc, counts, _old = stage(hist_dual, isa, data)
        run_dispatch_functional(proc, proc.dispatches[0])
        got = proc.download(counts, np.uint32, BINS)
        expected = np.bincount(data % BINS, minlength=BINS).astype(np.uint32)
        assert np.array_equal(got, expected)

    def test_old_values_identical_across_isas(self, hist_dual, data):
        outs = {}
        for isa in ("hsail", "gcn3"):
            proc, _counts, old = stage(hist_dual, isa, data)
            run_dispatch_functional(proc, proc.dispatches[0])
            outs[isa] = proc.download(old, np.uint32, N)
        assert np.array_equal(outs["hsail"], outs["gcn3"])


class TestTiming:
    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_histogram_through_timing_model(self, hist_dual, data, isa):
        proc, counts, _old = stage(hist_dual, isa, data)
        stats = Gpu(small_config(2), proc).run_all()[0]
        got = proc.download(counts, np.uint32, BINS)
        expected = np.bincount(data % BINS, minlength=BINS).astype(np.uint32)
        assert np.array_equal(got, expected)
        assert stats.dynamic_instructions > 0


class TestLowering:
    def test_maps_to_flat_atomic(self, hist_dual):
        ops = [i.opcode for i in hist_dual.gcn3.instrs]
        assert "flat_atomic_add" in ops

    def test_result_waited_before_use(self, hist_dual):
        """The old value flows into a store, so a waitcnt must separate
        the atomic from its consumer."""
        instrs = hist_dual.gcn3.instrs
        idx = next(i for i, x in enumerate(instrs)
                   if x.opcode == "flat_atomic_add")
        dest = instrs[idx].vgpr_writes()
        for later in instrs[idx + 1:]:
            if later.opcode == "s_waitcnt":
                break
            assert not (set(later.vgpr_reads()) & set(dest))

    def test_encoding_roundtrip(self, hist_dual):
        from repro.gcn3.encoding import decode_kernel, encode_kernel

        decoded = decode_kernel(encode_kernel(hist_dual.gcn3))
        assert "flat_atomic_add" in [i.opcode for i in decoded]

    def test_brig_roundtrip(self, hist_dual):
        from repro.hsail.brig import decode_brig, encode_brig

        decoded = decode_brig(encode_brig(hist_dual.hsail))
        assert any(i.opcode == "atomic_add" for i in decoded.instrs)


class TestValidation:
    def test_lds_atomics_rejected(self):
        kb = KernelBuilder("bad", [("p", DType.U64)])
        with pytest.raises(KernelBuildError):
            kb.atomic_add(Segment.GROUP, kb.const(DType.U32, 0), 1)
