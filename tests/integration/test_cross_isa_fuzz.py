"""Differential fuzzing: random kernels must agree across ISAs.

Hypothesis generates random (but well-typed) kernel bodies; each is
compiled through the full two-phase pipeline and executed functionally
under HSAIL and GCN3.  Any divergence in the output buffer is a
miscompilation in the finalizer or a semantics bug in one of the
instruction sets — the strongest single invariant in the repository.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Session, run_dispatch_functional
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess

N = 64  # one wavefront


class _Program:
    """A recipe of operations replayable onto a KernelBuilder."""

    def __init__(self, ops):
        self.ops = ops

    def __repr__(self):
        return f"Program({self.ops!r})"


_INT_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "min", "max"]
_FLOAT_BINOPS = ["add", "sub", "mul", "min", "max", "div"]
_CMP_OPS = ["eq", "ne", "lt", "le", "gt", "ge"]


@st.composite
def programs(draw):
    ops = []
    n_ops = draw(st.integers(min_value=1, max_value=14))
    int_vals = 2   # v0 = tid, v1 = loaded input
    float_vals = 1  # f0 = input as float
    pred_vals = 0
    for _ in range(n_ops):
        choice = draw(st.integers(0, 6))
        if choice == 0:  # int binop
            op = draw(st.sampled_from(_INT_BINOPS))
            a = draw(st.integers(0, int_vals - 1))
            b = draw(st.integers(0, int_vals - 1))
            ops.append(("int", op, a, b))
            int_vals += 1
        elif choice == 1:  # int op with constant
            op = draw(st.sampled_from(_INT_BINOPS))
            a = draw(st.integers(0, int_vals - 1))
            c = draw(st.integers(0, 2**20))
            ops.append(("int_const", op, a, c))
            int_vals += 1
        elif choice == 2:  # shift
            left = draw(st.booleans())
            a = draw(st.integers(0, int_vals - 1))
            amt = draw(st.integers(0, 31))
            ops.append(("shift", left, a, amt))
            int_vals += 1
        elif choice == 3:  # float binop
            op = draw(st.sampled_from(_FLOAT_BINOPS))
            a = draw(st.integers(0, float_vals - 1))
            b = draw(st.integers(0, float_vals - 1))
            ops.append(("float", op, a, b))
            float_vals += 1
        elif choice == 4:  # compare -> predicate
            op = draw(st.sampled_from(_CMP_OPS))
            a = draw(st.integers(0, int_vals - 1))
            b = draw(st.integers(0, int_vals - 1))
            ops.append(("cmp", op, a, b))
            pred_vals += 1
        elif choice == 5 and pred_vals:  # cmov
            p = draw(st.integers(0, pred_vals - 1))
            a = draw(st.integers(0, int_vals - 1))
            b = draw(st.integers(0, int_vals - 1))
            ops.append(("cmov", p, a, b))
            int_vals += 1
        elif choice == 6 and pred_vals:  # divergent if updating a value
            p = draw(st.integers(0, pred_vals - 1))
            a = draw(st.integers(0, int_vals - 1))
            delta = draw(st.integers(0, 1000))
            ops.append(("if_add", p, a, delta))
            int_vals += 1
    return _Program(ops)


def _build(program: _Program):
    kb = KernelBuilder("fuzz", [("inp", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    loaded = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
    ints = [tid, loaded]
    floats = [kb.cvt(loaded, DType.F32)]
    preds = []
    for op in program.ops:
        kind = op[0]
        if kind == "int":
            _, name, a, b = op
            ints.append(getattr(kb, {"and": "bit_and", "or": "bit_or",
                                     "xor": "bit_xor"}.get(name, name))(
                ints[a], ints[b]))
        elif kind == "int_const":
            _, name, a, c = op
            ints.append(getattr(kb, {"and": "bit_and", "or": "bit_or",
                                     "xor": "bit_xor"}.get(name, name))(
                ints[a], c))
        elif kind == "shift":
            _, left, a, amt = op
            ints.append(kb.shl(ints[a], amt) if left else kb.shr(ints[a], amt))
        elif kind == "float":
            _, name, a, b = op
            if name == "div":
                floats.append(kb.fdiv(floats[a], floats[b]))
            else:
                floats.append(getattr(kb, name)(floats[a], floats[b]))
        elif kind == "cmp":
            _, name, a, b = op
            preds.append(getattr(kb, name)(ints[a], ints[b]))
        elif kind == "cmov":
            _, p, a, b = op
            ints.append(kb.cmov(preds[p], ints[a], ints[b]))
        elif kind == "if_add":
            _, p, a, delta = op
            acc = kb.var(DType.U32, ints[a])
            with kb.If(preds[p]):
                kb.assign(acc, acc + delta)
            ints.append(acc)
    # Fold everything into one u32 result so every value is live.
    result = ints[-1]
    for v in ints[:-1]:
        result = result ^ v
    f_bits = kb.cvt(floats[-1] * 1024.0, DType.U32)
    result = result + f_bits
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, result)
    return kb.finish()


def _run(dual, isa, data):
    proc = GpuProcess(isa)
    inp = proc.upload(data)
    out = proc.alloc_buffer(4 * N)
    proc.dispatch(dual.for_isa(isa), grid=N, wg=64, kernargs=[inp, out])
    run_dispatch_functional(proc, proc.dispatches[0])
    return proc.download(out, np.uint32, N)


@given(programs(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_kernels_agree_across_isas(program, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(1, 2**16, N).astype(np.uint32)
    dual = Session().compile(_build(program))
    hsail_out = _run(dual, "hsail", data)
    gcn3_out = _run(dual, "gcn3", data)
    assert np.array_equal(hsail_out, gcn3_out), program


@given(programs())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_kernels_respect_structural_invariants(program):
    dual = Session().compile(_build(program))
    assert dual.expansion_ratio >= 1.0
    assert dual.gcn3.vgprs_used <= 256
    assert dual.gcn3.sgprs_used <= 102
    n = len(dual.gcn3.instrs)
    for instr in dual.gcn3.instrs:
        if instr.is_branch:
            assert instr.target is not None and 0 <= instr.target < n
    # encoding roundtrip on arbitrary generated code
    from repro.gcn3.encoding import decode_kernel, encode_kernel

    decoded = decode_kernel(encode_kernel(dual.gcn3))
    assert [d.opcode for d in decoded] == [i.opcode for i in dual.gcn3.instrs]
