"""Nested control-flow torture tests: every combination of uniform and
divergent ifs/loops, verified cross-ISA and against numpy references."""

import numpy as np
import pytest

from repro.common.config import small_config
from repro.common.errors import DeadlockError
from repro.core import Session, run_dispatch_functional
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu

N = 128


def run_both(dual, data, extra=()):
    outs = {}
    for isa in ("hsail", "gcn3"):
        proc = GpuProcess(isa)
        inp = proc.upload(data)
        out = proc.alloc_buffer(4 * N)
        proc.dispatch(dual.for_isa(isa), grid=N, wg=64,
                      kernargs=[inp, out] + list(extra))
        run_dispatch_functional(proc, proc.dispatches[0])
        outs[isa] = proc.download(out, np.uint32, N)
    assert np.array_equal(outs["hsail"], outs["gcn3"])
    return outs["gcn3"]


def standard_params():
    return [("inp", DType.U64), ("out", DType.U64)]


class TestNesting:
    def test_divergent_if_inside_divergent_loop(self):
        kb = KernelBuilder("k", standard_params())
        tid = kb.wi_abs_id()
        off = kb.cvt(tid, DType.U64) * 4
        x = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
        total = kb.var(DType.U32, 0)
        i = kb.var(DType.U32, 0)
        with kb.Loop() as loop:
            with kb.If(kb.gt(i & 1, 0)):       # odd iterations only
                kb.assign(total, total + i)
            kb.assign(i, i + 1)
            loop.continue_if(kb.lt(i, x & 15))  # per-lane trip count
        kb.store(Segment.GLOBAL, kb.kernarg("out") + off, total)
        dual = Session().compile(kb.finish())

        data = np.random.default_rng(0).integers(1, 2**16, N).astype(np.uint32)
        got = run_both(dual, data)
        expected = np.zeros(N, dtype=np.uint32)
        for lane in range(N):
            total = i = 0
            while True:
                if i & 1:
                    total += i
                i += 1
                if not (i < (data[lane] & 15)):
                    break
            expected[lane] = total
        assert np.array_equal(got, expected)

    def test_divergent_loop_inside_divergent_if(self):
        kb = KernelBuilder("k", standard_params())
        tid = kb.wi_abs_id()
        off = kb.cvt(tid, DType.U64) * 4
        x = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
        acc = kb.var(DType.U32, 0)
        with kb.If(kb.gt(x & 7, 2)) as br:
            j = kb.var(DType.U32, 0)
            with kb.Loop() as loop:
                kb.assign(acc, acc + 3)
                kb.assign(j, j + 1)
                loop.continue_if(kb.lt(j, x & 3))
            with br.Else():
                kb.assign(acc, 99)
        kb.store(Segment.GLOBAL, kb.kernarg("out") + off, acc)
        dual = Session().compile(kb.finish())

        data = np.random.default_rng(1).integers(0, 2**16, N).astype(np.uint32)
        got = run_both(dual, data)
        expected = np.zeros(N, dtype=np.uint32)
        for lane in range(N):
            x = int(data[lane])
            if (x & 7) > 2:
                acc = j = 0
                while True:
                    acc += 3
                    j += 1
                    if not (j < (x & 3)):
                        break
                expected[lane] = acc
            else:
                expected[lane] = 99
        assert np.array_equal(got, expected)

    def test_three_deep_nesting(self):
        kb = KernelBuilder("k", standard_params())
        tid = kb.wi_abs_id()
        off = kb.cvt(tid, DType.U64) * 4
        x = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
        acc = kb.var(DType.U32, 0)
        with kb.for_range(0, 3) as i:             # uniform loop
            with kb.If(kb.lt(x & 3, 2)):          # divergent if
                with kb.If(kb.eq(i, 1)) as inner:  # uniform-per-iter if
                    kb.assign(acc, acc + 100)
                    with inner.Else():
                        kb.assign(acc, acc + x)
        kb.store(Segment.GLOBAL, kb.kernarg("out") + off, acc)
        dual = Session().compile(kb.finish())

        data = np.random.default_rng(2).integers(0, 1000, N).astype(np.uint32)
        got = run_both(dual, data)
        expected = np.zeros(N, dtype=np.uint32)
        for lane in range(N):
            acc = 0
            for i in range(3):
                if (data[lane] & 3) < 2:
                    acc = acc + 100 if i == 1 else acc + int(data[lane])
            expected[lane] = acc & 0xFFFFFFFF
        assert np.array_equal(got, expected)

    def test_sequential_divergent_ifs_reconverge(self):
        """Mask must be fully restored between sibling regions."""
        kb = KernelBuilder("k", standard_params())
        tid = kb.wi_abs_id()
        off = kb.cvt(tid, DType.U64) * 4
        x = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
        acc = kb.var(DType.U32, 0)
        with kb.If(kb.lt(x, 100)):
            kb.assign(acc, acc + 1)
        with kb.If(kb.ge(x, 100)):
            kb.assign(acc, acc + 2)
        # every lane passes exactly one guard
        kb.store(Segment.GLOBAL, kb.kernarg("out") + off, acc)
        dual = Session().compile(kb.finish())
        data = np.random.default_rng(3).integers(0, 200, N).astype(np.uint32)
        got = run_both(dual, data)
        expected = np.where(data < 100, 1, 2).astype(np.uint32)
        assert np.array_equal(got, expected)


class TestTimingDeterminism:
    def test_identical_runs_identical_cycles(self, branchy_dual):
        results = []
        data = np.random.default_rng(5).integers(0, 100, N).astype(np.uint32)
        for _ in range(2):
            proc = GpuProcess("gcn3")
            inp = proc.upload(data)
            out = proc.alloc_buffer(4 * N)
            proc.dispatch(branchy_dual.gcn3, grid=N, wg=64,
                          kernargs=[inp, out, 50])
            stats = Gpu(small_config(2), proc).run_all()[0]
            results.append(stats.snapshot())
        assert results[0] == results[1]


class TestDeadlockDetection:
    def test_divergent_barrier_deadlocks_loudly(self):
        """A barrier inside wavefront-divergent control hangs the
        workgroup; the model must diagnose it rather than spin."""
        kb = KernelBuilder("bad_barrier", [("out", DType.U64)])
        tid = kb.wi_abs_id()
        with kb.If(kb.lt(tid, 64)):  # only the first wavefront arrives
            kb.barrier()
        kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4,
                 tid)
        dual = Session().compile(kb.finish())
        proc = GpuProcess("gcn3")
        out = proc.alloc_buffer(4 * 128)
        proc.dispatch(dual.gcn3, grid=128, wg=128, kernargs=[out])
        config = small_config(1).scaled(deadlock_cycles=20_000)
        with pytest.raises(DeadlockError):
            Gpu(config, proc).run_all()
