"""Seeded property-based fuzzing: scalar vs vector replay equivalence.

Random kernels built through the same DSL generator style as
``test_cross_isa_fuzz`` are captured under execute-at-issue, then the
recorded trace is replayed under both cycle engines; the per-dispatch
StatSet payloads must be bit-identical all three ways.  Three targeted
strategies stress exactly what the batch decode of timing/vector.py
must get right:

* **divergent control flow** — nested data-dependent ifs, else-arms,
  and short variable-trip loops, so the recorded streams are full of
  partial active masks, taken branches, and reconvergence jumps;
* **partial-EXEC memory ops** — loads and stores issued under
  predicates, so memory-line slices must stay keyed to issue order even
  when some lanes (or whole records) contribute nothing;
* **bank-conflict-heavy VRF patterns** — long operand chains over a
  small register window, hammering reuse distances, gather windows, and
  the sampled uniqueness probes.

``derandomize=True`` keeps each run's example sequence fixed (seeded
fuzz): CI failures reproduce locally from the printed example alone.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import small_config
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu
from repro.timing.replay import TraceRecorder

N = 128  # two wavefronts, so inter-wavefront interleaving replays too

_INT_BINOPS = ["add", "sub", "mul", "bit_and", "bit_or", "bit_xor",
               "min", "max"]
_CMP_OPS = ["eq", "ne", "lt", "le", "gt", "ge"]

_FUZZ_SETTINGS = settings(max_examples=8, deadline=None, derandomize=True,
                          suppress_health_check=[HealthCheck.too_slow])


def _dispatch(dual, isa, data):
    proc = GpuProcess(isa)
    inp = proc.upload(data)
    out = proc.alloc_buffer(4 * N)
    proc.dispatch(dual.for_isa(isa), grid=N, wg=64, kernargs=[inp, out])
    return proc


def _assert_engines_identical(dual, isa, data):
    """Capture, then replay scalar and vector; all payloads must match."""
    cfg = small_config(2)
    rec = TraceRecorder()
    capture = Gpu(cfg, _dispatch(dual, isa, data), recorder=rec).run_all()
    trace = rec.finish({"verified": True, "workload": "fuzz", "isa": isa})
    reference = [s.to_payload() for s in capture]
    for engine in ("scalar", "vector"):
        gpu = Gpu(cfg.with_overrides({"engine": engine}),
                  _dispatch(dual, isa, data), replay=trace)
        assert gpu.engine == engine
        replayed = [s.to_payload() for s in gpu.run_all()]
        assert replayed == reference, f"{engine} replay diverged on {isa}"


def _both_isas(build, program, data_seed):
    data = (np.random.default_rng(data_seed)
            .integers(1, 2**16, N).astype(np.uint32))
    dual = Session().compile(build(program))
    for isa in ("hsail", "gcn3"):
        _assert_engines_identical(dual, isa, data)


# ---------------------------------------------------------------------------
# Strategy 1: divergent control flow
# ---------------------------------------------------------------------------


@st.composite
def divergent_programs(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=2, max_value=7))):
        ops.append((
            draw(st.sampled_from(["if", "if_else", "loop", "op"])),
            draw(st.sampled_from(_CMP_OPS)),
            draw(st.integers(min_value=0, max_value=63)),
            draw(st.sampled_from(_INT_BINOPS)),
            draw(st.integers(min_value=1, max_value=999)),
            draw(st.booleans()),
        ))
    return ops


def _build_divergent(ops):
    kb = KernelBuilder("fuzz_div", [("inp", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    out = kb.kernarg("out")
    loaded = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
    acc = kb.var(DType.U32, loaded)
    lane = kb.bit_and(tid, 63)
    for kind, cmp_op, const, op, delta, mem in ops:
        pred = getattr(kb, cmp_op)(lane, const)
        if kind == "if":
            with kb.If(pred):
                kb.assign(acc, getattr(kb, op)(acc, delta))
                if mem:  # partial-EXEC store under the branch predicate
                    kb.store(Segment.GLOBAL, out + off, acc)
        elif kind == "if_else":
            with kb.If(pred) as br:
                kb.assign(acc, kb.add(acc, delta))
                with br.Else():
                    kb.assign(acc, kb.bit_xor(acc, delta))
        elif kind == "loop":
            trips = kb.add(kb.bit_and(lane, 3), 1)  # 1..4, lane-dependent
            with kb.for_range(0, trips) as i:
                kb.assign(acc, kb.add(acc, kb.add(i, delta)))
        else:
            kb.assign(acc, getattr(kb, op)(acc, delta))
    kb.store(Segment.GLOBAL, out + off, acc)
    return kb.finish()


@given(divergent_programs(), st.integers(min_value=0, max_value=2**31))
@_FUZZ_SETTINGS
def test_divergent_control_flow(program, data_seed):
    _both_isas(_build_divergent, program, data_seed)


# ---------------------------------------------------------------------------
# Strategy 2: memory ops under partial EXEC
# ---------------------------------------------------------------------------


@st.composite
def partial_mem_programs(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        ops.append((
            draw(st.sampled_from(_CMP_OPS)),
            draw(st.integers(min_value=0, max_value=63)),
            draw(st.booleans()),                      # load vs store
            draw(st.integers(min_value=0, max_value=3)),  # address shear
        ))
    return ops


def _build_partial_mem(ops):
    kb = KernelBuilder("fuzz_mem", [("inp", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    out = kb.kernarg("out")
    loaded = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
    acc = kb.var(DType.U32, loaded)
    lane = kb.bit_and(tid, 63)
    for cmp_op, const, is_load, shift in ops:
        pred = getattr(kb, cmp_op)(lane, const)
        with kb.If(pred):
            # sheared addresses keep coalescing interesting but in-bounds
            addr = out + kb.cvt(kb.bit_and(kb.shl(tid, shift), N - 1),
                                DType.U64) * 4
            if is_load:
                kb.assign(acc, kb.add(acc, kb.load(Segment.GLOBAL, addr,
                                                   DType.U32)))
            else:
                kb.store(Segment.GLOBAL, addr, acc)
    kb.store(Segment.GLOBAL, out + off, acc)
    return kb.finish()


@given(partial_mem_programs(), st.integers(min_value=0, max_value=2**31))
@_FUZZ_SETTINGS
def test_partial_exec_memory_ops(program, data_seed):
    _both_isas(_build_partial_mem, program, data_seed)


# ---------------------------------------------------------------------------
# Strategy 3: bank-conflict-heavy VRF operand patterns
# ---------------------------------------------------------------------------


@st.composite
def vrf_heavy_programs(draw):
    picks = []
    for _ in range(draw(st.integers(min_value=12, max_value=32))):
        picks.append((
            draw(st.sampled_from(_INT_BINOPS)),
            draw(st.integers(min_value=0, max_value=5)),
            draw(st.integers(min_value=0, max_value=5)),
        ))
    return picks


def _build_vrf_heavy(picks):
    kb = KernelBuilder("fuzz_vrf", [("inp", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    loaded = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
    # a rolling six-value window: every op reads two live registers, so
    # operand gathers keep revisiting the same few VRF slots
    window = [tid, loaded, kb.add(tid, loaded), kb.bit_xor(tid, loaded),
              kb.mul(loaded, 3), kb.shl(tid, 2)]
    for op, a, b in picks:
        window = window[1:] + [getattr(kb, op)(window[a], window[b])]
    result = window[0]
    for v in window[1:]:
        result = kb.bit_xor(result, v)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, result)
    return kb.finish()


@given(vrf_heavy_programs(), st.integers(min_value=0, max_value=2**31))
@_FUZZ_SETTINGS
def test_vrf_bank_conflict_patterns(program, data_seed):
    _both_isas(_build_vrf_heavy, program, data_seed)
