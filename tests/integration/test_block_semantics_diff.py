"""Differential suite: block-compiled semantics vs the raw interpreter.

The block-compiled capture path (:mod:`repro.common.superops`) promises
*bit-identity* with the reference interpreter — not statistical
closeness.  This suite holds it to that over the full tier-1 matrix:

* every (workload x ISA) cell is captured twice, once under
  ``REPRO_SEMANTICS=block`` and once under ``raw``, and the runs must
  agree on the verification verdict, every StatSet payload (total and
  per-dispatch), and the sha256 of the serialized trace blob — the
  trace is the capture path's actual product, so its digest is the
  strongest single equality;
* a small sweep is journaled under both engines and the journals must
  hash identically after zeroing the wall-clock fields (the only
  legitimately nondeterministic bytes in a journal line);
* a seeded hypothesis leg mirrors ``test_engine_fuzz``'s divergent
  control-flow strategy — the fusion rules' hardest case, since masks,
  RPC reconvergence, and chain boundaries all interact there — and
  cross-checks block vs raw on randomly generated kernels for both
  ISAs.  ``derandomize=True`` keeps CI deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import paper_config, small_config
from repro.common.superops import resolve_semantics
from repro.core import Session
from repro.harness.cache import resolve_trace_store, trace_fingerprint
from repro.harness.runner import ISAS, clear_suite_cache, run_workload
from repro.timing.gpu import Gpu
from repro.workloads import all_workloads

from .test_engine_fuzz import N, _build_divergent, _dispatch, divergent_programs

SCALE = 0.25
SEED = 7
SEMANTICS = ("block", "raw")

ALL_CELLS = [(w.name, isa) for w in all_workloads() for isa in ISAS]


def _stats_digest(run) -> str:
    payload = json.dumps(
        [run.total.to_payload()] + [s.to_payload() for s in run.per_dispatch],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.mark.parametrize(
    "name,isa", ALL_CELLS, ids=[f"{n}-{i}" for n, i in ALL_CELLS]
)
def test_block_vs_raw_capture_identical(name, isa, tmp_path, monkeypatch):
    """Capture each cell under both engines: stats, verdicts, and the
    serialized trace must be byte-for-byte the same."""
    config = paper_config()
    fp = trace_fingerprint(config, name, isa, SCALE, SEED)
    observed = {}
    for semantics in SEMANTICS:
        monkeypatch.setenv("REPRO_SEMANTICS", semantics)
        assert resolve_semantics() == semantics
        clear_suite_cache()
        store = resolve_trace_store(str(tmp_path / semantics))
        run = run_workload(name, isa, scale=SCALE, config=config, seed=SEED,
                           execution="capture", trace_store=store)
        blob = store.read_blob(fp)
        assert blob is not None, f"{semantics} capture left no trace"
        observed[semantics] = {
            "verified": run.verified,
            "stats": _stats_digest(run),
            "trace_sha256": hashlib.sha256(blob).hexdigest(),
            "dynamic_instructions": run.dynamic_instructions,
        }
    clear_suite_cache()
    assert observed["block"] == observed["raw"], (
        f"{name}/{isa}: block-compiled capture diverged from raw"
    )


def test_sweep_journal_digest_identical(tmp_path, monkeypatch):
    """A journaled sweep hashes the same under both engines once the
    volatile fields are stripped.

    Uses the distributed coordinator's :func:`journal_digest` — the
    exact equality gate a multi-host sweep is merged under — so "block
    and raw journals agree" means agreement by the same yardstick the
    dist subsystem enforces between workers.
    """
    from repro.dist import journal_digest
    from repro.explore.space import Axis
    from repro.explore.sweep import run_sweep

    digests = {}
    for semantics in SEMANTICS:
        monkeypatch.setenv("REPRO_SEMANTICS", semantics)
        clear_suite_cache()
        results = run_sweep(
            [Axis.parse("l1d.size_bytes=16384,65536")],
            base=small_config(2),
            workloads=["fft"],
            isas=("gcn3", "hsail"),
            scale=SCALE,
            seed=SEED,
            use_disk_cache=False,
            sweeps_dir=str(tmp_path / semantics),
            execution="execute",
        )
        assert not results.failed_points
        assert results.journal_path is not None
        digests[semantics] = journal_digest(results.journal_path)
    clear_suite_cache()
    assert digests["block"] == digests["raw"]


# ---------------------------------------------------------------------------
# Seeded fuzz leg: random divergent kernels, block vs raw
# ---------------------------------------------------------------------------

_FUZZ_SETTINGS = settings(max_examples=8, deadline=None, derandomize=True,
                          suppress_health_check=[HealthCheck.too_slow])


def _timing_payloads(dual, isa, data, semantics):
    os.environ["REPRO_SEMANTICS"] = semantics
    try:
        gpu = Gpu(small_config(2), _dispatch(dual, isa, data))
        return [s.to_payload() for s in gpu.run_all()]
    finally:
        os.environ.pop("REPRO_SEMANTICS", None)


@given(divergent_programs(), st.integers(min_value=0, max_value=2**31))
@_FUZZ_SETTINGS
def test_fuzz_block_vs_raw_divergent(program, data_seed):
    data = (np.random.default_rng(data_seed)
            .integers(1, 2**16, N).astype(np.uint32))
    dual = Session().compile(_build_divergent(program))
    for isa in ("hsail", "gcn3"):
        block = _timing_payloads(dual, isa, data, "block")
        raw = _timing_payloads(dual, isa, data, "raw")
        assert block == raw, f"fused semantics diverged on {isa}"
