"""Exhaustive op-matrix differential tests.

One kernel per (operation, dtype) combination, executed under both ISAs
on random inputs; results must be bit-identical.  This pins every DSL
operation's full pipeline: HSAIL codegen, finalizer lowering, and both
functional models.
"""

import numpy as np
import pytest

from repro.core import Session, run_dispatch_functional
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess

N = 64

_B = [("a", "b")]

BINARY_CASES = [
    (op, dtype)
    for op in ("add", "sub", "mul", "min", "max")
    for dtype in (DType.U32, DType.S32, DType.F32, DType.F64)
] + [
    (op, dtype)
    for op in ("bit_and", "bit_or", "bit_xor")
    for dtype in (DType.U32, DType.U64)
] + [
    ("add", DType.U64), ("sub", DType.U64), ("mul", DType.U64),
    ("fdiv", DType.F32), ("fdiv", DType.F64),
    ("mulhi", DType.U32), ("mulhi", DType.S32),
    ("shl", DType.U32), ("shr", DType.U32), ("shr", DType.S32),
    ("shl", DType.U64), ("shr", DType.U64),
]

UNARY_CASES = [
    ("neg", DType.S32), ("neg", DType.F32), ("neg", DType.F64),
    ("bit_not", DType.U32),
    ("abs", DType.S32), ("abs", DType.F32), ("abs", DType.F64),
    ("rcp", DType.F32), ("rcp", DType.F64),
    ("sqrt", DType.F32), ("sqrt", DType.F64),
]

CVT_CASES = [
    (DType.U32, DType.F32), (DType.S32, DType.F32), (DType.F32, DType.U32),
    (DType.F32, DType.S32), (DType.F32, DType.F64), (DType.F64, DType.F32),
    (DType.U32, DType.F64), (DType.S32, DType.F64), (DType.F64, DType.U32),
    (DType.F64, DType.S32), (DType.U32, DType.U64), (DType.U64, DType.U32),
    (DType.U32, DType.S32), (DType.S32, DType.U32),
]

CMP_CASES = [
    (op, dtype)
    for op in ("eq", "ne", "lt", "le", "gt", "ge")
    for dtype in (DType.U32, DType.S32, DType.F64)
]


def _load(kb, name, dtype, tid):
    width = 8 if dtype.is_wide else 4
    addr = kb.kernarg(name) + kb.cvt(tid, DType.U64) * width
    return kb.load(Segment.GLOBAL, addr, dtype)


def _store_u32(kb, value, tid):
    kb.store(Segment.GLOBAL,
             kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4, value)


def _as_u32(kb, value):
    """Collapse any result type to observable u32 bits."""
    if value.dtype == DType.U32:
        return value
    if value.dtype == DType.S32:
        return kb.cvt(value, DType.U32)
    if value.dtype == DType.B1:
        return kb.cmov(value, kb.const(DType.U32, 1), 0)
    if value.dtype == DType.F32:
        return kb.cvt(value * 1024.0, DType.U32)
    if value.dtype == DType.F64:
        return kb.cvt(value * 1024.0, DType.U32)
    if value.dtype == DType.U64:
        lo = kb.cvt(value, DType.U32)
        hi = kb.cvt(kb.shr(value, 32), DType.U32)
        return lo ^ hi
    raise AssertionError(value.dtype)


def _inputs(dtype, rng):
    if dtype == DType.F32:
        return (rng.random(N, dtype=np.float32) * 4 + 0.25).astype(np.float32)
    if dtype == DType.F64:
        return rng.random(N) * 4 + 0.25
    if dtype == DType.S32:
        return rng.integers(-2**20, 2**20, N).astype(np.int32)
    if dtype == DType.U64:
        return rng.integers(0, 2**40, N).astype(np.uint64)
    return rng.integers(0, 2**20, N).astype(np.uint32)


def run_both(ir, arrays):
    outs = {}
    for isa in ("hsail", "gcn3"):
        dual = Session().compile(ir)
        proc = GpuProcess(isa)
        addrs = [proc.upload(a) for a in arrays]
        out = proc.alloc_buffer(4 * N)
        proc.dispatch(dual.for_isa(isa), grid=N, wg=64,
                      kernargs=addrs + [out])
        run_dispatch_functional(proc, proc.dispatches[0])
        outs[isa] = proc.download(out, np.uint32, N)
    return outs


@pytest.mark.parametrize("op,dtype", BINARY_CASES,
                         ids=lambda v: getattr(v, "value", v))
def test_binary_ops_agree(op, dtype):
    kb = KernelBuilder("m", [("a", DType.U64), ("b", DType.U64),
                             ("out", DType.U64)])
    tid = kb.wi_abs_id()
    a = _load(kb, "a", dtype, tid)
    b = _load(kb, "b", dtype, tid)
    if op == "shl" or op == "shr":
        result = getattr(kb, op)(a, 5)
    else:
        result = getattr(kb, op)(a, b)
    _store_u32(kb, _as_u32(kb, result), tid)
    ir = kb.finish()

    rng = np.random.default_rng(hash((op, dtype.value)) % 2**31)
    arrays = [_inputs(dtype, rng), _inputs(dtype, rng)]
    outs = run_both(ir, arrays)
    assert np.array_equal(outs["hsail"], outs["gcn3"]), (op, dtype)


@pytest.mark.parametrize("op,dtype", UNARY_CASES,
                         ids=lambda v: getattr(v, "value", v))
def test_unary_ops_agree(op, dtype):
    kb = KernelBuilder("m", [("a", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    a = _load(kb, "a", dtype, tid)
    result = getattr(kb, op)(a)
    _store_u32(kb, _as_u32(kb, result), tid)
    ir = kb.finish()

    rng = np.random.default_rng(hash((op, dtype.value)) % 2**31)
    outs = run_both(ir, [_inputs(dtype, rng)])
    assert np.array_equal(outs["hsail"], outs["gcn3"]), (op, dtype)


@pytest.mark.parametrize("src,dst", CVT_CASES,
                         ids=lambda v: getattr(v, "value", v))
def test_conversions_agree(src, dst):
    kb = KernelBuilder("m", [("a", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    a = _load(kb, "a", src, tid)
    result = kb.cvt(a, dst)
    _store_u32(kb, _as_u32(kb, result), tid)
    ir = kb.finish()

    rng = np.random.default_rng(hash((src.value, dst.value)) % 2**31)
    outs = run_both(ir, [_inputs(src, rng)])
    assert np.array_equal(outs["hsail"], outs["gcn3"]), (src, dst)


@pytest.mark.parametrize("op,dtype", CMP_CASES,
                         ids=lambda v: getattr(v, "value", v))
def test_compares_agree(op, dtype):
    kb = KernelBuilder("m", [("a", DType.U64), ("b", DType.U64),
                             ("out", DType.U64)])
    tid = kb.wi_abs_id()
    a = _load(kb, "a", dtype, tid)
    b = _load(kb, "b", dtype, tid)
    pred = getattr(kb, op)(a, b)
    _store_u32(kb, _as_u32(kb, pred), tid)
    ir = kb.finish()

    rng = np.random.default_rng(hash((op, dtype.value)) % 2**31)
    arrays = [_inputs(dtype, rng), _inputs(dtype, rng)]
    outs = run_both(ir, arrays)
    assert np.array_equal(outs["hsail"], outs["gcn3"]), (op, dtype)


def test_fma_and_mad_agree():
    kb = KernelBuilder("m", [("a", DType.U64), ("b", DType.U64),
                             ("out", DType.U64)])
    tid = kb.wi_abs_id()
    af = _load(kb, "a", DType.F64, tid)
    bf = _load(kb, "b", DType.F64, tid)
    f = kb.fma(af, bf, 1.5)
    ai = kb.cvt(tid, DType.U32)
    m = kb.mad(ai, 7, 3)
    _store_u32(kb, _as_u32(kb, f) ^ m, tid)
    ir = kb.finish()

    rng = np.random.default_rng(9)
    outs = run_both(ir, [_inputs(DType.F64, rng), _inputs(DType.F64, rng)])
    assert np.array_equal(outs["hsail"], outs["gcn3"])


def test_nan_propagation_consistent():
    """NaNs must flow identically through both models' min/max."""
    kb = KernelBuilder("m", [("a", DType.U64), ("b", DType.U64),
                             ("out", DType.U64)])
    tid = kb.wi_abs_id()
    a = _load(kb, "a", DType.F32, tid)
    b = _load(kb, "b", DType.F32, tid)
    result = kb.min(a, b) + kb.max(a, b)
    pred = kb.eq(result, result)  # false for NaN lanes
    _store_u32(kb, kb.cmov(pred, kb.const(DType.U32, 1), 0), tid)
    ir = kb.finish()

    a = np.ones(N, dtype=np.float32)
    a[::3] = np.nan
    b = np.full(N, 2.0, dtype=np.float32)
    outs = run_both(ir, [a, b])
    assert np.array_equal(outs["hsail"], outs["gcn3"])
    assert outs["gcn3"][0] == 0 and outs["gcn3"][1] == 1
