"""Integration tests asserting the paper's directional claims.

These run the full dual-ISA simulation over the whole workload suite (at
reduced scale) and check that each evaluation-section claim holds in
direction.  Magnitudes are recorded in EXPERIMENTS.md; these tests pin
the *shape* so regressions that flip a conclusion fail loudly.
"""

import pytest

from repro.common.categories import InstrCategory
from repro.common.config import small_config
from repro.common.tables import geomean
from repro.harness.hardware_model import correlate
from repro.core import Session


@pytest.fixture(scope="module")
def suite():
    return Session(small_config(4)).suite(scale=0.2)


def ratios(suite, fn):
    out = {}
    for w in suite.workloads:
        hs, g3 = suite.pair(w)
        out[w] = fn(hs, g3)
    return out


class TestEverythingRuns:
    def test_all_workloads_verified_under_both_isas(self, suite):
        assert suite.all_verified()


class TestDynamicInstructions:
    """§V.A: GCN3 executes 1.5x-3x more dynamic instructions (FFT ~1x)."""

    def test_mean_expansion_band(self, suite):
        r = ratios(suite, lambda h, g: g.dynamic_instructions / h.dynamic_instructions)
        assert 1.4 < geomean(list(r.values())) < 3.0

    def test_every_workload_expands(self, suite):
        r = ratios(suite, lambda h, g: g.dynamic_instructions / h.dynamic_instructions)
        assert all(v > 1.0 for v in r.values())

    def test_fft_among_the_smallest_expansions(self, suite):
        """The paper's exception: FFT barely expands.  (Our fully
        predicated Bitonic port competes for the bottom spot.)"""
        r = ratios(suite, lambda h, g: g.dynamic_instructions / h.dynamic_instructions)
        assert r["fft"] <= sorted(r.values())[1]

    def test_hsail_never_uses_scalar_pipeline(self, suite):
        for w in suite.workloads:
            hs, _ = suite.pair(w)
            cats = hs.total.instructions_by_category
            assert cats.get(InstrCategory.SALU, 0) == 0
            assert cats.get(InstrCategory.SMEM, 0) == 0

    def test_gcn3_always_uses_scalar_pipeline(self, suite):
        for w in suite.workloads:
            _, g3 = suite.pair(w)
            assert g3.total.instructions_by_category[InstrCategory.SALU] > 0


class TestInstructionFootprint:
    """§V.C / Figure 8: HSAIL underrepresents the instruction footprint."""

    def test_gcn3_footprint_larger_on_average(self, suite):
        """Direction holds in aggregate; magnitude (the paper's 2.4x) is
        muted because our HSAIL codegen folds constants aggressively and
        carries no compiler prologue -- see EXPERIMENTS.md."""
        r = ratios(suite, lambda h, g: g.instr_footprint_bytes / h.instr_footprint_bytes)
        assert geomean(list(r.values())) > 1.1
        assert all(v > 0.8 for v in r.values())

    def test_lulesh_among_largest_gcn3_footprints(self, suite):
        """LULESH's many kernels give it one of the largest machine-code
        footprints (the paper's L1I-thrash candidate)."""
        footprints = {w: suite.get(w, "gcn3").instr_footprint_bytes
                      for w in suite.workloads}
        top_two = sorted(footprints.values())[-2:]
        assert footprints["lulesh"] in top_two


class TestIbFlushes:
    """§V.C / Figure 9: GCN3 needs no more IB flushes than HSAIL."""

    def test_gcn3_flushes_at_most_hsail(self, suite):
        for w in suite.workloads:
            hs, g3 = suite.pair(w)
            assert g3.stat("ib_flushes") <= hs.stat("ib_flushes") * 1.05, w

    def test_divergent_workloads_flush_less_under_gcn3(self, suite):
        for w in ("comd", "md", "lulesh"):
            hs, g3 = suite.pair(w)
            assert g3.stat("ib_flushes") < hs.stat("ib_flushes"), w


class TestReuseDistance:
    """§V.B / Figure 7: GCN3 register reuse distance ~2x HSAIL's."""

    def test_gcn3_median_reuse_larger(self, suite):
        r = ratios(suite, lambda h, g: (g.total.reuse_distance.median or 1) /
                   (h.total.reuse_distance.median or 1))
        assert geomean(list(r.values())) > 1.5


class TestIpc:
    """§V.E / Figure 11: GCN3 generally achieves higher IPC."""

    def test_geomean_ipc_higher(self, suite):
        r = ratios(suite, lambda h, g: g.total.ipc / h.total.ipc)
        assert geomean(list(r.values())) > 1.3


class TestRuntime:
    """§V.E / Figure 12: runtime differences are workload-dependent and
    go both ways."""

    def test_runtime_not_uniformly_biased(self, suite):
        r = ratios(suite, lambda h, g: h.cycles / g.cycles)
        assert any(v > 1.05 for v in r.values())   # HSAIL slower somewhere
        assert any(v < 1.0 for v in r.values())    # GCN3 slower somewhere

    def test_lulesh_gcn3_slower(self, suite):
        hs, g3 = suite.pair("lulesh")
        assert g3.cycles > hs.cycles


class TestSimilarStats:
    """§VI / Table 6: data footprint and SIMD utilization match."""

    def test_simd_utilization_within_a_few_percent(self, suite):
        for w in suite.workloads:
            hs, g3 = suite.pair(w)
            h = hs.total.simd_utilization.value
            g = g3.total.simd_utilization.value
            assert abs(h - g) < 0.12, (w, h, g)

    def test_data_footprint_identical_except_segment_users(self, suite):
        for w in suite.workloads:
            hs, g3 = suite.pair(w)
            ratio = hs.data_footprint_bytes / g3.data_footprint_bytes
            if w in ("fft", "lulesh"):
                assert ratio > 1.05, (w, ratio)   # per-launch inflation
            else:
                assert ratio == pytest.approx(1.0, abs=0.02), (w, ratio)

    def test_lulesh_inflation_exceeds_ffts(self, suite):
        """LULESH (thousands of launches) inflates far more than FFT."""
        f_hs, f_g3 = suite.pair("fft")
        l_hs, l_g3 = suite.pair("lulesh")
        fft_ratio = f_hs.data_footprint_bytes / f_g3.data_footprint_bytes
        lulesh_ratio = l_hs.data_footprint_bytes / l_g3.data_footprint_bytes
        assert lulesh_ratio > fft_ratio


class TestHardwareCorrelation:
    """§VII / Table 7: IL simulation adds runtime error; correlation stays
    high for both ISAs."""

    def test_both_isas_correlate(self, suite):
        report = correlate(suite)
        assert report.correlation["hsail"] > 0.9
        assert report.correlation["gcn3"] > 0.9

    def test_hsail_error_exceeds_gcn3(self, suite):
        report = correlate(suite)
        assert report.mean_abs_error["hsail"] > report.mean_abs_error["gcn3"]
        assert report.added_error() > 0
