"""The functional engine and the timing model must agree byte-for-byte.

Execute-at-issue means the timing model's functional side effects should
be identical to the pure functional simulator's for every workload and
both ISAs — any divergence indicates a timing-model sequencing bug
(e.g. issuing an instruction with a stale mask).
"""

import numpy as np
import pytest

from repro.common.config import small_config
from repro.core import run_dispatch_functional
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu
from repro.workloads import create, workload_names

SCALE = 0.1


def run_workload(name, isa, engine):
    workload = create(name, scale=SCALE)
    proc = GpuProcess(isa, memory_capacity=1 << 24)
    workload.stage(proc, isa)
    if engine == "functional":
        for dispatch in proc.dispatches:
            run_dispatch_functional(proc, dispatch)
    else:
        Gpu(small_config(2), proc).run_all()
    assert workload.verify(proc), (name, isa, engine)
    return workload, proc


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("isa", ["hsail", "gcn3"])
def test_engines_agree(name, isa):
    _wl_f, proc_f = run_workload(name, isa, "functional")
    _wl_t, proc_t = run_workload(name, isa, "timing")
    # Compare the full mapped heap below the smaller limit; allocation
    # layout is deterministic so addresses align across the two runs.
    limit = min(proc_f.memory.mapped_limit, proc_t.memory.mapped_limit)
    a = proc_f.memory.read_block(0x1_0000, limit - 0x1_0000)
    b = proc_t.memory.read_block(0x1_0000, limit - 0x1_0000)
    assert np.array_equal(a, b), (name, isa)
