"""Multi-dimensional (2-D/3-D) dispatch tests."""

import numpy as np
import pytest

from repro.common.config import small_config
from repro.common.errors import FinalizerError
from repro.common.exec_types import DispatchContext
from repro.core import Session, run_dispatch_functional
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def build_coords_kernel():
    """out[y*W + x] = x * 1000 + y, addressed from 2-D ids."""
    kb = KernelBuilder("coords", [("out", DType.U64), ("width", DType.U32)])
    x = kb.wi_abs_id(0)
    y = kb.wi_abs_id(1)
    flat = kb.mad(y, kb.kernarg("width"), 0) + x
    value = kb.mad(x, 1000, 0) + y
    kb.store(Segment.GLOBAL,
             kb.kernarg("out") + kb.cvt(flat, DType.U64) * 4, value)
    return Session().compile(kb.finish())


class TestDispatchContext:
    def make(self, grid, wg, wg_id, wf_index=0):
        return DispatchContext(grid_size=grid, wg_size=wg, wg_id=wg_id,
                               wf_index_in_wg=wf_index)

    def test_local_ids_x_fastest(self):
        ctx = self.make((32, 8, 1), (16, 4, 1), (0, 0, 0))
        lx, ly, _lz = ctx.local_ids()
        assert lx[0] == 0 and lx[15] == 15
        assert lx[16] == 0 and ly[16] == 1
        assert ly[63] == 3 and lx[63] == 15

    def test_absolute_ids_offset_by_workgroup(self):
        ctx = self.make((32, 8, 1), (16, 4, 1), (1, 1, 0))
        ax, ay, _az = ctx.absolute_ids()
        assert ax[0] == 16 and ay[0] == 4

    def test_ragged_edge_mask_interleaved(self):
        # grid 10x8, wg 16x4: workgroup (0,0) has lanes with lx >= 10 dead
        ctx = self.make((10, 8, 1), (16, 4, 1), (0, 0, 0))
        mask = ctx.active_mask_array()
        assert mask[9] and not mask[10]     # first row cut at x=10
        assert mask[16] and not mask[26]    # second row likewise
        assert ctx.active_lanes() == 40     # 10 x 4 rows

    def test_second_wavefront_of_3d_wg(self):
        ctx = self.make((4, 4, 8), (4, 4, 8), (0, 0, 0), wf_index=1)
        _lx, _ly, lz = ctx.local_ids()
        assert lz[0] == 4  # 64 lanes per z=16-item layer -> wf1 starts z=4

    def test_workgroup_decomposition(self):
        from repro.runtime.process import Dispatch

        # use the pure function via a staged dispatch
        dual = build_coords_kernel()
        proc = GpuProcess("gcn3")
        out = proc.alloc_buffer(4 * 32 * 8)
        d = proc.dispatch(dual.gcn3, grid=(32, 8, 1), wg=(16, 4, 1),
                          kernargs=[out, 32])
        assert d.num_workgroups == 4
        assert d.workgroup_id(0) == (0, 0, 0)
        assert d.workgroup_id(1) == (1, 0, 0)
        assert d.workgroup_id(2) == (0, 1, 0)
        assert d.workgroup_id(3) == (1, 1, 0)


class TestAbi2D:
    def test_gcn3_kernel_declares_dims(self):
        dual = build_coords_kernel()
        assert dual.gcn3.abi_dims == 2

    def test_y_sequence_in_preamble(self):
        """The Table-1 sequence repeats for Y: bfe of the high half of the
        packed sizes dword, s_mul by s9, v_add with v1."""
        from repro.gcn3.isa import SImm, SReg, VReg

        dual = build_coords_kernel()
        instrs = dual.gcn3.instrs
        bfes = [i for i in instrs if i.opcode == "s_bfe_u32"]
        patterns = {i.srcs[1].pattern for i in bfes if isinstance(i.srcs[1], SImm)}
        assert 0x100000 in patterns          # offset 0, width 16 (X)
        assert 0x100010 in patterns          # offset 16, width 16 (Y)
        muls = [i for i in instrs if i.opcode == "s_mul_i32"]
        assert any(SReg(9) in m.srcs for m in muls)   # workgroup id Y
        adds = [i for i in instrs if i.opcode == "v_add_u32"]
        assert any(VReg(1) in a.srcs for a in adds)   # local id Y

    def test_packed_dword_loaded_once(self):
        dual = build_coords_kernel()
        loads = [i for i in dual.gcn3.instrs if i.opcode == "s_load_dword"]
        wg_size_loads = [i for i in loads if i.attrs.get("offset") == 4]
        assert len(wg_size_loads) == 1  # shared by the X and Y extracts

    def test_private_with_2d_rejected(self):
        kb = KernelBuilder("bad", [("out", DType.U64)])
        s = kb.private_scratch(8)
        kb.store(Segment.PRIVATE, s, kb.wi_abs_id(1))
        with pytest.raises(FinalizerError):
            Session().compile(kb.finish())


class TestExecution2D:
    GRID = (48, 24, 1)
    WG = (16, 8, 1)

    def expected(self):
        w, h = self.GRID[0], self.GRID[1]
        xs, ys = np.meshgrid(np.arange(w), np.arange(h))
        return (xs * 1000 + ys).astype(np.uint32).reshape(-1)

    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_functional(self, isa):
        dual = build_coords_kernel()
        proc = GpuProcess(isa)
        n = self.GRID[0] * self.GRID[1]
        out = proc.alloc_buffer(4 * n)
        proc.dispatch(dual.for_isa(isa), grid=self.GRID, wg=self.WG,
                      kernargs=[out, self.GRID[0]])
        run_dispatch_functional(proc, proc.dispatches[0])
        assert np.array_equal(proc.download(out, np.uint32, n), self.expected())

    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_timing(self, isa):
        dual = build_coords_kernel()
        proc = GpuProcess(isa)
        n = self.GRID[0] * self.GRID[1]
        out = proc.alloc_buffer(4 * n)
        proc.dispatch(dual.for_isa(isa), grid=self.GRID, wg=self.WG,
                      kernargs=[out, self.GRID[0]])
        stats = Gpu(small_config(2), proc).run_all()[0]
        assert np.array_equal(proc.download(out, np.uint32, n), self.expected())
        assert stats.simd_utilization.value == 1.0  # aligned 2-D grid

    def test_ragged_2d_grid(self):
        dual = build_coords_kernel()
        grid = (30, 10, 1)  # not a multiple of the 16x8 workgroup
        proc = GpuProcess("gcn3")
        n = grid[0] * grid[1]
        out = proc.alloc_buffer(4 * n)
        proc.dispatch(dual.gcn3, grid=grid, wg=self.WG, kernargs=[out, grid[0]])
        run_dispatch_functional(proc, proc.dispatches[0])
        xs, ys = np.meshgrid(np.arange(grid[0]), np.arange(grid[1]))
        expected = (xs * 1000 + ys).astype(np.uint32).reshape(-1)
        assert np.array_equal(proc.download(out, np.uint32, n), expected)


class TestExecution3D:
    def test_3d_ids(self):
        kb = KernelBuilder("vox", [("out", DType.U64), ("w", DType.U32),
                                   ("h", DType.U32)])
        x, y, z = kb.wi_abs_id(0), kb.wi_abs_id(1), kb.wi_abs_id(2)
        flat = kb.mad(z, kb.kernarg("h"), y)
        flat = kb.mad(flat, kb.kernarg("w"), x)
        value = ((z << 16) | (y << 8)) | x
        kb.store(Segment.GLOBAL,
                 kb.kernarg("out") + kb.cvt(flat, DType.U64) * 4, value)
        dual = Session().compile(kb.finish())
        assert dual.gcn3.abi_dims == 3

        grid = (8, 4, 4)
        n = 8 * 4 * 4
        outs = {}
        for isa in ("hsail", "gcn3"):
            proc = GpuProcess(isa)
            out = proc.alloc_buffer(4 * n)
            proc.dispatch(dual.for_isa(isa), grid=grid, wg=(8, 4, 2),
                          kernargs=[out, 8, 4])
            run_dispatch_functional(proc, proc.dispatches[0])
            outs[isa] = proc.download(out, np.uint32, n)
        zs, ys, xs = np.meshgrid(np.arange(4), np.arange(4), np.arange(8),
                                 indexing="ij")
        expected = ((zs << 16) | (ys << 8) | xs).astype(np.uint32).reshape(-1)
        assert np.array_equal(outs["gcn3"], expected)
        assert np.array_equal(outs["hsail"], outs["gcn3"])
