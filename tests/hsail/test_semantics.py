"""HSAIL functional-semantics tests (per-op + reconvergence stack)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exec_types import DispatchContext, MemKind
from repro.hsail.isa import HReg, HsailInstr, HsailKernel, Imm
from repro.hsail.semantics import HsailExecutor, HsailWfState, RsEntry
from repro.kernels.types import DType, encode_imm
from repro.runtime.memory import Segment, SimulatedMemory


def make_ctx(grid=64, wg=64, wg_id=0):
    return DispatchContext(
        grid_size=(grid, 1, 1), wg_size=(wg, 1, 1), wg_id=(wg_id, 0, 0),
        wf_index_in_wg=0,
    )


def make_wf(instrs, ctx=None, slots=32, rpc=None):
    kernel = HsailKernel(
        name="t", instrs=instrs, params=[], kernarg_bytes=0,
        group_bytes=0, private_bytes=0, spill_bytes=0,
        reg_slots_used=slots, rpc_table=rpc or {},
    )
    return HsailWfState(kernel=kernel, ctx=ctx or make_ctx())


def alu(opcode, dtype, dest, srcs, **attrs):
    return HsailInstr(opcode=opcode, dtype=dtype, dest=dest, srcs=srcs,
                      attrs=attrs)


@pytest.fixture()
def executor():
    return HsailExecutor(SimulatedMemory())


class TestAluOps:
    def run_binary(self, executor, opcode, dtype, a_vals, b_vals, **attrs):
        instrs = [alu(opcode, dtype, HReg("d" if dtype.is_wide else "s", 8),
                      (HReg("d" if dtype.is_wide else "s", 0),
                       HReg("d" if dtype.is_wide else "s", 2)), **attrs),
                  HsailInstr(opcode="ret", dtype=DType.U32)]
        wf = make_wf(instrs)
        wf.write_typed(HReg("d" if dtype.is_wide else "s", 0), dtype,
                       a_vals, np.ones(64, dtype=bool))
        wf.write_typed(HReg("d" if dtype.is_wide else "s", 2), dtype,
                       b_vals, np.ones(64, dtype=bool))
        executor.execute(wf)
        return wf.read_typed(HReg("d" if dtype.is_wide else "s", 8), dtype)

    @pytest.mark.parametrize("opcode,fn", [
        ("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
        ("min", np.minimum), ("max", np.maximum),
    ])
    def test_u32_arith(self, executor, opcode, fn):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1000, 64).astype(np.uint32)
        b = rng.integers(1, 1000, 64).astype(np.uint32)
        out = self.run_binary(executor, opcode, DType.U32, a, b)
        assert np.array_equal(out, fn(a, b))

    @pytest.mark.parametrize("opcode", ["and", "or", "xor"])
    def test_u32_bitwise(self, executor, opcode):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2**32, 64, dtype=np.uint64).astype(np.uint32)
        b = rng.integers(0, 2**32, 64, dtype=np.uint64).astype(np.uint32)
        fn = {"and": np.bitwise_and, "or": np.bitwise_or,
              "xor": np.bitwise_xor}[opcode]
        out = self.run_binary(executor, opcode, DType.U32, a, b)
        assert np.array_equal(out, fn(a, b))

    def test_f64_division_exact(self, executor):
        rng = np.random.default_rng(2)
        a = rng.random(64)
        b = rng.random(64) + 0.5
        out = self.run_binary(executor, "div", DType.F64, a, b)
        assert np.array_equal(out, a / b)

    def test_mulhi(self, executor):
        a = np.full(64, 0xFFFFFFFF, dtype=np.uint32)
        b = np.full(64, 2, dtype=np.uint32)
        out = self.run_binary(executor, "mulhi", DType.U32, a, b)
        assert np.array_equal(out, np.ones(64, dtype=np.uint32))

    def test_u64_add_carries(self, executor):
        a = np.full(64, 0xFFFFFFFF, dtype=np.uint64)
        b = np.full(64, 1, dtype=np.uint64)
        out = self.run_binary(executor, "add", DType.U64, a, b)
        assert np.array_equal(out, np.full(64, 0x100000000, dtype=np.uint64))

    def test_shifts(self, executor):
        instrs = [alu("shl", DType.U32, HReg("s", 4),
                      (HReg("s", 0), Imm(3, DType.U32))),
                  HsailInstr(opcode="ret", dtype=DType.U32)]
        wf = make_wf(instrs)
        vals = np.arange(64, dtype=np.uint32)
        wf.write_typed(HReg("s", 0), DType.U32, vals, np.ones(64, dtype=bool))
        executor.execute(wf)
        assert np.array_equal(wf.regs[4], vals << 3)

    def test_arithmetic_shr_s32(self, executor):
        instrs = [alu("shr", DType.S32, HReg("s", 4),
                      (HReg("s", 0), Imm(1, DType.U32))),
                  HsailInstr(opcode="ret", dtype=DType.U32)]
        wf = make_wf(instrs)
        vals = np.full(64, -8, dtype=np.int32)
        wf.write_typed(HReg("s", 0), DType.S32, vals, np.ones(64, dtype=bool))
        executor.execute(wf)
        assert np.array_equal(wf.regs[4].view(np.int32),
                              np.full(64, -4, dtype=np.int32))

    def test_cmp_then_cmov(self, executor):
        instrs = [
            alu("cmp", DType.U32, HReg("s", 4),
                (HReg("s", 0), Imm(32, DType.U32)), cmp="lt"),
            alu("cmov", DType.U32, HReg("s", 5),
                (HReg("s", 4), Imm(1, DType.U32), Imm(0, DType.U32))),
            HsailInstr(opcode="ret", dtype=DType.U32),
        ]
        wf = make_wf(instrs)
        wf.regs[0] = np.arange(64, dtype=np.uint32)
        executor.execute(wf)
        executor.execute(wf)
        expected = (np.arange(64) < 32).astype(np.uint32)
        assert np.array_equal(wf.regs[5], expected)

    def test_cvt_u32_to_f64(self, executor):
        instrs = [alu("cvt", DType.F64, HReg("d", 2), (HReg("s", 0),),
                      src_dtype=DType.U32),
                  HsailInstr(opcode="ret", dtype=DType.U32)]
        wf = make_wf(instrs)
        wf.regs[0] = np.arange(64, dtype=np.uint32)
        executor.execute(wf)
        out = wf.read_typed(HReg("d", 2), DType.F64)
        assert np.array_equal(out, np.arange(64, dtype=np.float64))

    def test_masked_lanes_do_not_write(self, executor):
        instrs = [alu("mov", DType.U32, HReg("s", 1), (Imm(7, DType.U32),)),
                  HsailInstr(opcode="ret", dtype=DType.U32)]
        wf = make_wf(instrs)
        wf.exec_mask = 0b1111  # only 4 lanes
        executor.execute(wf)
        assert (wf.regs[1][:4] == 7).all()
        assert (wf.regs[1][4:] == 0).all()

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_add_u32_wraps_like_hardware(self, a, b):
        executor = HsailExecutor(SimulatedMemory())
        out = self.run_binary(
            executor, "add", DType.U32,
            np.full(64, a, dtype=np.uint32), np.full(64, b, dtype=np.uint32),
        )
        assert out[0] == (a + b) % 2**32


class TestDispatchQueries:
    def test_workitemabsid(self, executor):
        ctx = make_ctx(grid=256, wg=128, wg_id=1)
        wf = make_wf([alu("workitemabsid", DType.U32, HReg("s", 0), (), dim=0),
                      HsailInstr(opcode="ret", dtype=DType.U32)], ctx)
        executor.execute(wf)
        assert wf.regs[0][0] == 128  # wg 1 starts at 128
        assert wf.regs[0][5] == 133

    def test_workitemid_within_wg(self, executor):
        ctx = DispatchContext(grid_size=(256, 1, 1), wg_size=(128, 1, 1),
                              wg_id=(0, 0, 0), wf_index_in_wg=1)
        wf = make_wf([alu("workitemid", DType.U32, HReg("s", 0), (), dim=0),
                      HsailInstr(opcode="ret", dtype=DType.U32)], ctx)
        executor.execute(wf)
        assert wf.regs[0][0] == 64  # second wavefront of the workgroup

    def test_workgroup_queries(self, executor):
        ctx = make_ctx(grid=512, wg=128, wg_id=3)
        instrs = [
            alu("workgroupid", DType.U32, HReg("s", 0), (), dim=0),
            alu("workgroupsize", DType.U32, HReg("s", 1), (), dim=0),
            alu("gridsize", DType.U32, HReg("s", 2), (), dim=0),
            HsailInstr(opcode="ret", dtype=DType.U32),
        ]
        wf = make_wf(instrs, ctx)
        for _ in range(3):
            executor.execute(wf)
        assert wf.regs[0][0] == 3
        assert wf.regs[1][0] == 128
        assert wf.regs[2][0] == 512

    def test_partial_wavefront_mask(self, executor):
        ctx = make_ctx(grid=40, wg=64)
        wf = make_wf([HsailInstr(opcode="ret", dtype=DType.U32)], ctx)
        assert wf.exec_mask == (1 << 40) - 1


class TestMemory:
    def test_global_load_store(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 4096)
        executor = HsailExecutor(mem)
        data = np.arange(64, dtype=np.uint32) * 2
        mem.write_array(0x10000, data)
        instrs = [
            HsailInstr(opcode="ld", dtype=DType.U32, dest=HReg("s", 4),
                       srcs=(HReg("d", 0),), segment=Segment.GLOBAL),
            HsailInstr(opcode="st", dtype=DType.U32,
                       srcs=(HReg("d", 2), HReg("s", 4)),
                       segment=Segment.GLOBAL),
            HsailInstr(opcode="ret", dtype=DType.U32),
        ]
        wf = make_wf(instrs)
        lanes = np.arange(64, dtype=np.uint64)
        wf.write_typed(HReg("d", 0), DType.U64, 0x10000 + lanes * 4,
                       np.ones(64, dtype=bool))
        wf.write_typed(HReg("d", 2), DType.U64, 0x10400 + lanes * 4,
                       np.ones(64, dtype=bool))
        r1 = executor.execute(wf)
        r2 = executor.execute(wf)
        assert r1.mem_kind == MemKind.GLOBAL_LOAD
        assert r2.mem_kind == MemKind.GLOBAL_STORE
        assert len(r1.mem_lines) == 4  # 64 lanes x 4B = 4 cache lines
        out = mem.read_array(0x10400, np.uint32, 64)
        assert np.array_equal(out, data)

    def test_kernarg_load_has_no_memory_traffic(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 64)
        mem.store_scalar(0x10000, 0xABCD, 4, track=False)
        executor = HsailExecutor(mem)
        ctx = make_ctx()
        ctx.kernarg_base = 0x10000
        instrs = [
            HsailInstr(opcode="ld", dtype=DType.U32, dest=HReg("s", 0),
                       srcs=(Imm(0, DType.U32),), segment=Segment.KERNARG),
            HsailInstr(opcode="ret", dtype=DType.U32),
        ]
        wf = make_wf(instrs, ctx)
        result = executor.execute(wf)
        # serviced from simulator state: no traffic, no footprint
        assert result.mem_kind == MemKind.NONE
        assert mem.data_footprint_bytes == 0
        assert (wf.regs[0] == 0xABCD).all()

    def test_private_segment_addressing(self):
        mem = SimulatedMemory()
        mem.map_range(0x20000, 64 * 64)
        executor = HsailExecutor(mem)
        ctx = make_ctx()
        ctx.private_base = 0x20000
        ctx.private_stride = 8
        instrs = [
            HsailInstr(opcode="st", dtype=DType.U32,
                       srcs=(Imm(4, DType.U32), HReg("s", 0)),
                       segment=Segment.PRIVATE),
            HsailInstr(opcode="ret", dtype=DType.U32),
        ]
        wf = make_wf(instrs, ctx)
        wf.regs[0] = np.arange(64, dtype=np.uint32) + 100
        executor.execute(wf)
        # lane i writes to private_base + i*stride + offset 4
        for lane in (0, 1, 63):
            assert mem.load_scalar(0x20000 + lane * 8 + 4, 4) == 100 + lane


class TestReconvergenceStack:
    def build_if_else_instrs(self):
        # 0: cbr !cond -> 3 ; 1: mov r1=1 ; 2: br -> 4 ; 3: mov r1=2 ; 4: ret
        return [
            HsailInstr(opcode="cbr", dtype=DType.B1, srcs=(HReg("s", 0),),
                       attrs={"target": 3, "invert": True}),
            alu("mov", DType.U32, HReg("s", 1), (Imm(1, DType.U32),)),
            HsailInstr(opcode="br", dtype=DType.U32, attrs={"target": 4}),
            alu("mov", DType.U32, HReg("s", 1), (Imm(2, DType.U32),)),
            HsailInstr(opcode="ret", dtype=DType.U32),
        ]

    def run_to_completion(self, wf, executor, max_steps=50):
        jumps = 0
        while not wf.done:
            if executor.check_reconvergence(wf) is not None:
                jumps += 1
            executor.execute(wf)
            assert max_steps > 0
            max_steps -= 1
        return jumps

    def test_uniform_taken_no_divergence(self, executor):
        wf = make_wf(self.build_if_else_instrs(),
                     rpc={0: 4})
        wf.regs[0] = np.zeros(64, dtype=np.uint32)  # cond false -> all jump
        self.run_to_completion(wf, executor)
        assert (wf.regs[1] == 2).all()
        assert not wf.rs

    def test_divergent_both_paths_execute(self, executor):
        wf = make_wf(self.build_if_else_instrs(), rpc={0: 4})
        cond = np.zeros(64, dtype=np.uint32)
        cond[:32] = 1
        wf.regs[0] = cond
        rs_jumps = self.run_to_completion(wf, executor)
        assert rs_jumps == 1  # one pending-path switch
        assert (wf.regs[1][:32] == 1).all()
        assert (wf.regs[1][32:] == 2).all()
        assert wf.exec_mask == (1 << 64) - 1  # reconverged

    def test_divergence_pushes_rs_entry(self, executor):
        wf = make_wf(self.build_if_else_instrs(), rpc={0: 4})
        cond = np.zeros(64, dtype=np.uint32)
        cond[0] = 1
        wf.regs[0] = cond
        executor.execute(wf)  # the cbr diverges
        assert len(wf.rs) == 1
        entry = wf.rs[0]
        assert entry.rpc == 4
        assert entry.pending_pc == 1  # fallthrough (then) path queued
        # taken path (inverted cond: lanes with cond==0) runs first
        assert wf.exec_mask == ((1 << 64) - 1) & ~1
        assert wf.pc == 3

    def test_rs_merge_restores_mask(self, executor):
        wf = make_wf([HsailInstr(opcode="ret", dtype=DType.U32)])
        wf.rs.append(RsEntry(rpc=0, pending_pc=None, pending_mask=0,
                             merged_mask=0xFF))
        wf.exec_mask = 0x0F
        assert executor.check_reconvergence(wf) is None
        assert wf.exec_mask == 0xFF
        assert not wf.rs
