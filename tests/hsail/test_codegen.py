"""DSL -> HSAIL code-generation tests."""

import pytest

from repro.common.errors import RegisterAllocationError
from repro.hsail.codegen import compile_hsail
from repro.hsail.isa import CodeIf, CodeLoop, CodeSpan, HReg, Imm
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def compile_simple():
    kb = KernelBuilder("k", [("p", DType.U64), ("n", DType.U32)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    x = kb.load(Segment.GLOBAL, kb.kernarg("p") + off, DType.U32)
    kb.store(Segment.GLOBAL, kb.kernarg("p") + off, x + 1)
    return compile_hsail(kb.finish())


class TestBasics:
    def test_near_one_to_one_translation(self):
        kernel = compile_simple()
        ops = [i.opcode for i in kernel.instrs]
        # one dispatch query, one cvt, arithmetic, two kernarg loads,
        # a load, a store and ret; no expansion beyond that
        assert ops.count("workitemabsid") == 1
        assert ops.count("cvt") == 1
        assert ops[-1] == "ret"

    def test_constants_fold_into_immediates(self):
        kernel = compile_simple()
        # the *4 and +1 constants are immediate operands, not movs
        movs = [i for i in kernel.instrs if i.opcode == "mov"]
        assert not movs
        imms = [s for i in kernel.instrs for s in i.srcs if isinstance(s, Imm)]
        assert any(s.pattern == 4 for s in imms)
        assert any(s.pattern == 1 for s in imms)

    def test_kernarg_offsets_in_loads(self):
        kernel = compile_simple()
        kernarg_loads = [i for i in kernel.instrs
                         if i.opcode == "ld" and i.segment == Segment.KERNARG]
        # 'p' is read twice, both times from its offset 0
        assert len(kernarg_loads) == 2
        assert all(s.pattern == 0 for i in kernarg_loads for s in i.srcs)

    def test_registers_are_physical_after_allocation(self):
        kernel = compile_simple()
        for instr in kernel.instrs:
            for reg in instr.reg_reads() + instr.reg_writes():
                assert not reg.virtual

    def test_register_budget_respected(self):
        kernel = compile_simple()
        assert 0 < kernel.reg_slots_used <= 2048

    def test_wide_registers_even_aligned(self):
        kernel = compile_simple()
        for instr in kernel.instrs:
            for reg in instr.reg_reads() + instr.reg_writes():
                if reg.kind == "d":
                    assert reg.index % 2 == 0

    def test_virtual_stream_kept_for_finalizer(self):
        kernel = compile_simple()
        assert len(kernel.virtual_instrs) == len(kernel.instrs)
        assert all(
            r.virtual for i in kernel.virtual_instrs
            for r in i.reg_reads() + i.reg_writes()
        )
        # index-aligned: same opcodes
        assert [i.opcode for i in kernel.virtual_instrs] == \
            [i.opcode for i in kernel.instrs]


class TestControlFlow:
    def build_if_else(self):
        kb = KernelBuilder("k", [("n", DType.U32)])
        tid = kb.wi_abs_id()
        v = kb.var(DType.U32, 0)
        with kb.If(kb.lt(tid, kb.kernarg("n"))) as br:
            kb.assign(v, 1)
            with br.Else():
                kb.assign(v, 2)
        return compile_hsail(kb.finish())

    def test_branch_targets_resolved(self):
        kernel = self.build_if_else()
        for instr in kernel.instrs:
            if instr.is_branch:
                assert instr.target is not None
                assert 0 <= instr.target < len(kernel.instrs)

    def test_if_else_emits_cbr_and_br(self):
        kernel = self.build_if_else()
        ops = [i.opcode for i in kernel.instrs]
        assert "cbr" in ops and "br" in ops

    def test_cbr_is_inverted_skip(self):
        kernel = self.build_if_else()
        cbr = next(i for i in kernel.instrs if i.opcode == "cbr")
        assert cbr.invert

    def test_rpc_is_merge_point(self):
        kernel = self.build_if_else()
        cbr_index = next(i for i, x in enumerate(kernel.instrs)
                         if x.opcode == "cbr")
        rpc = kernel.rpc_table[cbr_index]
        # The merge point is after both arms; here it's the ret.
        assert kernel.instrs[rpc].opcode == "ret"

    def test_regions_cover_whole_kernel(self):
        kernel = self.build_if_else()
        spans = []

        def collect(elems):
            for e in elems:
                if isinstance(e, CodeSpan):
                    spans.append((e.start, e.end))
                elif isinstance(e, CodeIf):
                    collect(e.then_elems)
                    collect(e.else_elems)
                elif isinstance(e, CodeLoop):
                    collect(e.body_elems)

        collect(kernel.regions)
        covered = set()
        for start, end in spans:
            covered.update(range(start, end))
        n = len(kernel.instrs)
        branch_idxs = {i for i, x in enumerate(kernel.instrs) if x.is_branch}
        # everything except structural branches is inside some span
        assert covered | branch_idxs == set(range(n))

    def test_loop_region_backedge(self):
        kb = KernelBuilder("k", [])
        i = kb.var(DType.U32, 0)
        with kb.Loop() as loop:
            kb.assign(i, i + 1)
            loop.continue_if(kb.lt(i, 10))
        kernel = compile_hsail(kb.finish())
        loops = [e for e in kernel.regions if isinstance(e, CodeLoop)]
        assert len(loops) == 1
        assert kernel.instrs[loops[0].cbr_index].opcode == "cbr"
        # backedge points backwards
        assert kernel.instrs[loops[0].cbr_index].target <= loops[0].cbr_index


class TestRegisterPressure:
    def test_overflow_raises(self):
        kb = KernelBuilder("big", [("p", DType.U64)])
        base = kb.kernarg("p")
        values = []
        # > 2048 live 32-bit values cannot be allocated
        for i in range(2100):
            values.append(kb.load(Segment.GLOBAL, base + (4 * i), DType.U32))
        acc = kb.var(DType.U32, 0)
        for v in values:
            kb.assign(acc, acc + v)
        kb.store(Segment.GLOBAL, base, acc)
        # each load is also kept live by the later sum, plus u64 temps
        with pytest.raises(RegisterAllocationError):
            compile_hsail(kb.finish())
