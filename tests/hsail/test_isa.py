"""HSAIL instruction-model tests."""

import pytest

from repro.common.categories import InstrCategory
from repro.common.errors import CodegenError
from repro.hsail.isa import HSAIL_INSTR_BYTES, HReg, HsailInstr, HsailKernel, Imm
from repro.kernels.types import DType
from repro.runtime.memory import Segment


class TestCategories:
    def test_all_alu_is_vector(self):
        # "all HSAIL ALU instructions are vector instructions" (paper V.A)
        for op in ("add", "mul", "div", "cmp", "cmov", "mov", "fma"):
            instr = HsailInstr(opcode=op, dtype=DType.F32,
                               dest=HReg("s", 0), srcs=(Imm(0, DType.F32),) * 3)
            assert instr.category == InstrCategory.VALU

    def test_dispatch_queries_are_valu(self):
        instr = HsailInstr(opcode="workitemabsid", dtype=DType.U32,
                           dest=HReg("s", 0))
        assert instr.category == InstrCategory.VALU

    def test_memory_categories(self):
        ld = HsailInstr(opcode="ld", dtype=DType.F32, dest=HReg("s", 0),
                        srcs=(HReg("d", 2),), segment=Segment.GLOBAL)
        assert ld.category == InstrCategory.VMEM
        lds = HsailInstr(opcode="ld", dtype=DType.F32, dest=HReg("s", 0),
                         srcs=(HReg("s", 2),), segment=Segment.GROUP)
        assert lds.category == InstrCategory.LDS

    def test_no_scalar_categories_exist(self):
        # HSAIL has no scalar pipeline: nothing maps to SALU/SMEM.
        for op in ("br", "cbr", "barrier", "ret", "nop", "ld", "st", "add"):
            seg = Segment.GLOBAL if op in ("ld", "st") else None
            srcs = (HReg("d", 0), HReg("s", 2)) if op == "st" else (HReg("s", 0),)
            instr = HsailInstr(opcode=op, dtype=DType.U32, srcs=srcs,
                               segment=seg, attrs={"target": 0})
            assert instr.category not in (InstrCategory.SALU, InstrCategory.SMEM)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(CodegenError):
            HsailInstr(opcode="frobnicate", dtype=DType.U32)


class TestRegisters:
    def test_wide_register_slots(self):
        assert HReg("d", 4).slots == 2
        assert HReg("s", 4).slots == 1

    def test_bad_kind_rejected(self):
        with pytest.raises(CodegenError):
            HReg("q", 0)

    def test_slot_expansion(self):
        instr = HsailInstr(
            opcode="add", dtype=DType.U64, dest=HReg("d", 4),
            srcs=(HReg("d", 6), HReg("s", 1)),
        )
        assert instr.vrf_slots_written() == [4, 5]
        assert instr.vrf_slots_read() == [6, 7, 1]

    def test_virtual_slots_query_rejected(self):
        instr = HsailInstr(opcode="mov", dtype=DType.U32,
                           dest=HReg("s", 0, virtual=True),
                           srcs=(HReg("s", 1, virtual=True),))
        with pytest.raises(CodegenError):
            instr.vrf_slots_read()

    def test_repr_pair_notation(self):
        assert repr(HReg("d", 4)) == "$d[4:5]"
        assert repr(HReg("s", 3)) == "$s3"


class TestBranchProperties:
    def test_cbr(self):
        instr = HsailInstr(opcode="cbr", dtype=DType.B1,
                           srcs=(HReg("s", 0),),
                           attrs={"target": 7, "invert": True})
        assert instr.is_branch and instr.is_conditional
        assert instr.target == 7
        assert instr.invert

    def test_br(self):
        instr = HsailInstr(opcode="br", dtype=DType.U32, attrs={"target": 2})
        assert instr.is_branch and not instr.is_conditional


class TestKernelFootprint:
    def test_eight_bytes_per_instruction(self):
        instrs = [HsailInstr(opcode="nop", dtype=DType.U32) for _ in range(10)]
        kernel = HsailKernel(
            name="k", instrs=instrs, params=[], kernarg_bytes=0,
            group_bytes=0, private_bytes=0, spill_bytes=0,
        )
        assert kernel.code_bytes == 10 * HSAIL_INSTR_BYTES
        assert kernel.static_instructions == 10
