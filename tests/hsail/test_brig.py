"""BRIG serialization tests."""

import pytest

from repro.common.errors import EncodingError
from repro.hsail.brig import MAGIC, decode_brig, encode_brig
from repro.hsail.codegen import compile_hsail
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def build_kernel():
    kb = KernelBuilder("roundtrip", [("p", DType.U64), ("n", DType.U32)])
    tid = kb.wi_abs_id()
    acc = kb.var(DType.F64, 0.0)
    with kb.for_range(0, kb.kernarg("n")) as i:
        x = kb.cvt(i, DType.F64)
        with kb.If(kb.lt(x, kb.const(DType.F64, 3.0))):
            kb.assign(acc, acc + x)
    off = kb.cvt(tid, DType.U64) * 8
    kb.store(Segment.GLOBAL, kb.kernarg("p") + off, acc)
    return compile_hsail(kb.finish())


@pytest.fixture(scope="module")
def kernel():
    return build_kernel()


class TestRoundtrip:
    def test_instructions_identical(self, kernel):
        decoded = decode_brig(encode_brig(kernel))
        assert [repr(i) for i in decoded.instrs] == [repr(i) for i in kernel.instrs]

    def test_virtual_stream_identical(self, kernel):
        decoded = decode_brig(encode_brig(kernel))
        assert [repr(i) for i in decoded.virtual_instrs] == \
            [repr(i) for i in kernel.virtual_instrs]

    def test_metadata(self, kernel):
        decoded = decode_brig(encode_brig(kernel))
        assert decoded.name == kernel.name
        assert decoded.params == kernel.params
        assert decoded.kernarg_bytes == kernel.kernarg_bytes
        assert decoded.reg_slots_used == kernel.reg_slots_used
        assert decoded.num_vregs == kernel.num_vregs

    def test_rpc_recomputed(self, kernel):
        decoded = decode_brig(encode_brig(kernel))
        assert decoded.rpc_table == kernel.rpc_table

    def test_regions_preserved(self, kernel):
        decoded = decode_brig(encode_brig(kernel))
        assert repr(decoded.regions) == repr(kernel.regions)

    def test_refinalizes_identically(self, kernel):
        from repro.finalizer.finalize import finalize

        g1 = finalize(kernel)
        g2 = finalize(decode_brig(encode_brig(kernel)))
        assert [repr(i) for i in g1.instrs] == [repr(i) for i in g2.instrs]
        assert g1.vgprs_used == g2.vgprs_used
        assert g1.sgprs_used == g2.sgprs_used


class TestFormatProperties:
    def test_magic(self, kernel):
        assert encode_brig(kernel).startswith(MAGIC)

    def test_verbose_encoding(self, kernel):
        """BRIG is a verbose software format: far larger than the 8B/instr
        approximation used for footprint, and than the GCN3 encoding."""
        blob = encode_brig(kernel)
        assert len(blob) > 8 * len(kernel.instrs)

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            decode_brig(b"ELF\x00" + b"\x00" * 64)

    def test_bad_version_rejected(self, kernel):
        blob = bytearray(encode_brig(kernel))
        blob[4] = 99
        with pytest.raises(EncodingError):
            decode_brig(bytes(blob))

    def test_strings_deduplicated(self, kernel):
        # encoding the same kernel name twice must not grow the data section
        blob1 = encode_brig(kernel)
        blob2 = encode_brig(kernel)
        assert blob1 == blob2
