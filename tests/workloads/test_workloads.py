"""Workload suite tests: functional correctness on both ISAs (via the
functional engine) plus per-workload structural properties."""

import numpy as np
import pytest

from repro.common.categories import InstrCategory
from repro.core import run_dispatch_functional
from repro.runtime.process import GpuProcess
from repro.workloads import all_workloads, create, workload_names

SCALE = 0.15


def run_functional(workload, isa):
    proc = GpuProcess(isa, memory_capacity=1 << 24)
    workload.stage(proc, isa)
    for dispatch in proc.dispatches:
        run_dispatch_functional(proc, dispatch)
    return proc


class TestRegistry:
    def test_all_ten_paper_workloads_present(self):
        assert workload_names() == [
            "arraybw", "bitonic", "comd", "fft", "hpgmg",
            "lulesh", "md", "snap", "spmv", "xsbench",
        ]

    def test_create_unknown_rejected(self):
        with pytest.raises(KeyError):
            create("rodinia")

    def test_descriptions_match_table5(self):
        names = {w.name: w.description for w in all_workloads()}
        assert names["arraybw"] == "Memory streaming"
        assert names["lulesh"] == "Hydrodynamic simulation"
        assert names["xsbench"] == "Monte Carlo particle transport simulation"


@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("isa", ["hsail", "gcn3"])
def test_functional_correctness(name, isa):
    workload = create(name, scale=SCALE)
    proc = run_functional(workload, isa)
    assert workload.verify(proc), f"{name}/{isa} produced wrong results"


@pytest.mark.parametrize("name", workload_names())
def test_cross_isa_memory_equivalence(name):
    """Both ISAs must leave application buffers byte-identical."""
    results = {}
    for isa in ("hsail", "gcn3"):
        workload = create(name, scale=SCALE)
        proc = run_functional(workload, isa)
        assert workload.verify(proc)
        results[isa] = workload
    # verify() passing on both against the same host reference implies
    # numerical equivalence; spot-check the expansion on top:
    duals = results["gcn3"].kernels()
    for dual in duals.values():
        assert dual.expansion_ratio > 1.0


class TestWorkloadShapes:
    """Structural properties the paper attributes to each workload."""

    def test_fft_is_compute_bound(self):
        wl = create("fft", scale=SCALE)
        for dual in wl.kernels().values():
            counts = {}
            for i in dual.gcn3.instrs:
                counts[i.category] = counts.get(i.category, 0) + 1
            alu = counts.get(InstrCategory.VALU, 0) + counts.get(InstrCategory.SALU, 0)
            total = sum(counts.values())
            assert alu / total > 0.6

    def test_fft_has_no_divide(self):
        wl = create("fft", scale=SCALE)
        for dual in wl.kernels().values():
            assert not any("div" in i.opcode for i in dual.gcn3.instrs)

    def test_fft_uses_spill_segment(self):
        wl = create("fft", scale=SCALE)
        assert any(d.hsail.spill_bytes > 0 for d in wl.kernels().values())

    def test_fft_low_expansion(self):
        """FFT is the paper's exception: minimal GCN3 code expansion.

        (Statically; the dynamic-count version of this claim is asserted
        by the integration suite over full simulations.)
        """
        ratios = {}
        for wl in all_workloads(scale=SCALE):
            rs = [d.expansion_ratio for d in wl.kernels().values()]
            ratios[wl.name] = sum(rs) / len(rs)
        ordered = sorted(ratios.values())
        assert ratios["fft"] <= ordered[len(ordered) // 2]  # below median

    def test_bitonic_has_no_divergent_branches(self):
        wl = create("bitonic", scale=SCALE)
        from repro.finalizer.uniformity import analyze

        for dual in wl.kernels().values():
            info = analyze(dual.hsail)
            assert not any(info.divergent_branch.values())

    def test_bitonic_uses_lds_and_barriers(self):
        wl = create("bitonic", scale=SCALE)
        dual = wl.kernels()["sort"]
        ops = [i.opcode for i in dual.gcn3.instrs]
        assert "ds_read_b32" in ops and "ds_write_b32" in ops
        assert "s_barrier" in ops

    def test_comd_has_divergent_branch_and_divide(self):
        wl = create("comd", scale=SCALE)
        from repro.finalizer.uniformity import analyze

        dual = wl.kernels()["lj"]
        info = analyze(dual.hsail)
        assert any(info.divergent_branch.values())
        assert any("v_div_scale_f64" == i.opcode for i in dual.gcn3.instrs)

    def test_lulesh_has_many_small_kernels(self):
        wl = create("lulesh", scale=SCALE)
        kernels = wl.kernels()
        assert len(kernels) == 10
        for dual in kernels.values():
            assert dual.hsail.static_instructions < 120

    def test_lulesh_uses_private_segment(self):
        wl = create("lulesh", scale=SCALE)
        assert wl.kernels()["calc_energy"].hsail.private_bytes > 0

    def test_lulesh_launch_count(self):
        wl = create("lulesh", scale=1.0)
        proc = GpuProcess("gcn3", memory_capacity=1 << 24)
        wl.stage(proc, "gcn3")
        # 10 kernels x timesteps launches
        assert len(proc.dispatches) == 10 * wl.timesteps

    def test_spmv_diverges_lanes(self):
        wl = create("spmv", scale=SCALE)
        from repro.finalizer.uniformity import analyze

        info = analyze(wl.kernels()["csr"].hsail)
        assert any(info.divergent_branch.values())

    def test_xsbench_nuclide_counts_divergent(self):
        wl = create("xsbench", scale=SCALE)
        from repro.finalizer.uniformity import analyze

        info = analyze(wl.kernels()["lookup"].hsail)
        # at least the nuclide loop diverges; the binary search does not
        assert any(info.divergent_branch.values())
        assert not all(info.divergent_branch.values())

    def test_hpgmg_no_divergent_branches(self):
        wl = create("hpgmg", scale=SCALE)
        from repro.finalizer.uniformity import analyze

        for dual in wl.kernels().values():
            info = analyze(dual.hsail)
            assert not any(info.divergent_branch.values())

    def test_scaling_changes_problem_size(self):
        small = create("arraybw", scale=0.1)
        big = create("arraybw", scale=1.0)
        assert big.n_threads > small.n_threads


class TestFootprintMechanism:
    def test_hsail_private_frames_per_launch(self):
        """The Table 6 mechanism: per-launch allocation under HSAIL."""
        for isa, expect_growth in (("hsail", True), ("gcn3", False)):
            wl = create("lulesh", scale=SCALE)
            proc = GpuProcess(isa, memory_capacity=1 << 24)
            wl.stage(proc, isa)
            frames = {
                d.private_base for d in proc.dispatches
                if d.kernel.name == "lulesh_calc_energy"
            }
            if expect_growth:
                assert len(frames) == wl.timesteps  # fresh frame per launch
            else:
                assert len(frames) == 1             # per-process reuse
