"""Wire-schema coverage for the request objects: golden JSON round
trips per kind, unknown-field rejection with close-match suggestions,
the forward-compat version gate, and the CLI-vs-Session equivalence
guard (satellite of the ``repro serve`` redesign: every surface must
build the *same* request for the same knobs)."""

import json
from pathlib import Path

import pytest

from repro.common.config import paper_config, small_config
from repro.core import Session
from repro.core.requests import (
    API_VERSION,
    RequestError,
    RunRequest,
    SuiteRequest,
    SweepRequest,
    parse_request,
    parse_request_json,
    request_fields,
)
from repro.obs import TraceConfig

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden" / "requests"


def _golden(name: str) -> dict:
    return json.loads((GOLDEN_DIR / name).read_text())


def _sample_run() -> RunRequest:
    return RunRequest(
        workload="arraybw", isa="gcn3", scale=0.25, seed=11,
        config=small_config(2), trace=TraceConfig(),
        execution="auto", trace_dir="/tmp/traces", engine="vector")


def _sample_suite() -> SuiteRequest:
    return SuiteRequest(
        workloads=("arraybw", "bitonic"), scale=0.1, seed=3,
        config=small_config(2), use_cache=False, jobs=4,
        job_timeout=30.0, execution="execute")


def _sample_sweep() -> SweepRequest:
    from repro.explore.space import Axis

    return SweepRequest(
        axes=(Axis.parse("l1i.size_bytes=8k,16k,32k"),),
        mode="ofat", workloads=("lulesh",), isas=("gcn3",),
        scale=0.5, seed=7, config=paper_config(), jobs=2,
        execution="auto", verify_replay=False, engine="auto")


class TestRoundTrips:
    """to_json -> from_json is lossless for every request kind."""

    @pytest.mark.parametrize("build", [_sample_run, _sample_suite,
                                       _sample_sweep])
    def test_json_round_trip(self, build):
        request = build()
        again = type(request).from_json(request.to_json())
        assert again == request

    @pytest.mark.parametrize("build", [_sample_run, _sample_suite,
                                       _sample_sweep])
    def test_parse_request_dispatches_on_kind(self, build):
        request = build()
        assert parse_request_json(request.to_json()) == request
        assert parse_request(request.to_payload()) == request

    def test_defaults_round_trip(self):
        request = RunRequest(workload="lulesh", isa="hsail")
        again = RunRequest.from_json(request.to_json())
        assert again == request
        assert again.config.fingerprint() == paper_config().fingerprint()

    def test_config_overrides_apply_on_parse(self):
        payload = {"api": API_VERSION, "kind": "run", "workload": "arraybw",
                   "isa": "gcn3",
                   "config_overrides": {"l1d.size_bytes": 32768}}
        request = parse_request(payload)
        assert request.config.l1d.size_bytes == 32768
        # Overrides stack on top of an explicit config payload too.
        payload["config"] = small_config(2).to_dict()
        request = parse_request(payload)
        assert request.config.num_cus == 2
        assert request.config.l1d.size_bytes == 32768

    def test_resolved_config_folds_engine(self):
        request = RunRequest(workload="arraybw", isa="gcn3",
                             config=small_config(2), engine="vector")
        assert request.config.engine != "vector"  # original untouched
        assert request.resolved_config().engine == "vector"


class TestGoldenPayloads:
    """Committed golden JSON per kind: the wire format is a contract —
    if one of these fails, you changed the protocol and must bump
    API_VERSION (and the goldens) deliberately."""

    def test_run_matches_golden(self):
        assert _sample_run().to_payload() == _golden("run.json")

    def test_suite_matches_golden(self):
        assert _sample_suite().to_payload() == _golden("suite.json")

    def test_sweep_matches_golden(self):
        assert _sample_sweep().to_payload() == _golden("sweep.json")

    @pytest.mark.parametrize("name,build", [
        ("run.json", _sample_run),
        ("suite.json", _sample_suite),
        ("sweep.json", _sample_sweep),
    ])
    def test_golden_parses_back(self, name, build):
        assert parse_request(_golden(name)) == build()


class TestRejection:
    def test_unknown_field_rejected_with_suggestion(self):
        payload = {"api": API_VERSION, "kind": "run", "workload": "arraybw",
                   "isa": "gcn3", "scal": 0.5}
        with pytest.raises(RequestError, match="did you mean scale"):
            parse_request(payload)

    def test_unknown_field_without_close_match_lists_known(self):
        payload = {"api": API_VERSION, "kind": "run", "workload": "arraybw",
                   "isa": "gcn3", "zzz": 1}
        with pytest.raises(RequestError, match="known: api,"):
            parse_request(payload)

    def test_version_gate(self):
        payload = {"api": "repro-api/2", "kind": "run",
                   "workload": "arraybw", "isa": "gcn3"}
        with pytest.raises(RequestError, match="repro-api/1"):
            parse_request(payload)
        with pytest.raises(RequestError, match="unsupported"):
            parse_request({"kind": "run", "workload": "a", "isa": "gcn3"})

    def test_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            parse_request({"api": API_VERSION, "kind": "walk"})

    def test_expect_kind_mismatch(self):
        with pytest.raises(RequestError, match="expects a 'suite'"):
            parse_request(_sample_run().to_payload(), expect_kind="suite")

    def test_bad_isa_and_execution(self):
        with pytest.raises(RequestError, match="unknown ISA"):
            RunRequest(workload="arraybw", isa="ptx")
        with pytest.raises(RequestError, match="execution mode"):
            RunRequest(workload="arraybw", isa="gcn3", execution="warp")
        with pytest.raises(RequestError, match="unknown engine"):
            RunRequest(workload="arraybw", isa="gcn3", engine="cuda")

    def test_bad_config_payload(self):
        payload = {"api": API_VERSION, "kind": "run", "workload": "arraybw",
                   "isa": "gcn3", "config_overrides": {"l1x.size": 1}}
        with pytest.raises(RequestError, match="bad config"):
            parse_request(payload)

    def test_not_json(self):
        with pytest.raises(RequestError, match="not valid JSON"):
            parse_request_json("{nope")

    def test_request_fields_exposes_schema(self):
        assert "config_overrides" in request_fields("run")
        assert "axes" in request_fields("sweep")


class TestCliSessionEquivalence:
    """Kwarg-threading drift guard: the RunRequest the CLI parser builds
    must equal the one Session builds for the same flags — engine,
    execution, trace_dir, seed and all."""

    def test_default_flags_match(self):
        from repro.__main__ import build_parser, run_request_from_args

        args = build_parser().parse_args(
            ["run", "-w", "arraybw", "-i", "gcn3", "-s", "0.1",
             "--cus", "2"])
        cli = run_request_from_args(args)
        ses = Session(small_config(2)).build_run_request(
            "arraybw", "gcn3", scale=0.1)
        assert cli == ses

    def test_every_knob_matches(self):
        from repro.__main__ import build_parser, run_request_from_args

        args = build_parser().parse_args(
            ["run", "-w", "bitonic", "-i", "hsail", "-s", "0.25",
             "--cus", "2", "--seed", "13", "-O", "l1d.size_bytes=32k",
             "--execution", "auto", "--trace-dir", "/tmp/t",
             "--engine", "vector"])
        cli = run_request_from_args(args)
        config = small_config(2).with_overrides({"l1d.size_bytes": 32768})
        ses = Session(config).build_run_request(
            "bitonic", "hsail", scale=0.25, seed=13, execution="auto",
            trace_dir="/tmp/t", engine="vector")
        assert cli == ses
        # And both serialize to the same wire bytes.
        assert cli.to_json() == ses.to_json()

    def test_suite_cells_match_run_requests(self):
        """SuiteRequest.cells() decomposes into exactly the RunRequests
        Session.build_run_request would produce."""
        suite = Session(small_config(2)).build_suite_request(
            workloads=["arraybw"], scale=0.1)
        cells = suite.cells()
        assert [c.isa for c in cells] == ["hsail", "gcn3"]
        for cell in cells:
            assert cell == Session(small_config(2)).build_run_request(
                "arraybw", cell.isa, scale=0.1)


def _stats(run) -> dict:
    """The run payload minus host-wall noise (everything else must be
    bit-identical across execution surfaces)."""
    payload = run.to_payload()
    payload.pop("wall_seconds", None)
    return payload


class TestExecutePaths:
    def test_run_request_execute_matches_session(self):
        request = Session(small_config(2)).build_run_request(
            "arraybw", "gcn3", scale=0.1)
        via_request = request.execute()
        via_session = Session(small_config(2)).run("arraybw", "gcn3",
                                                   scale=0.1)
        assert _stats(via_request) == _stats(via_session)

    def test_deserialized_request_executes_identically(self):
        """The daemon scenario: a request that crossed the wire yields
        bit-identical statistics."""
        request = Session(small_config(2)).build_run_request(
            "arraybw", "gcn3", scale=0.1)
        rehydrated = RunRequest.from_json(request.to_json())
        assert _stats(rehydrated.execute()) == _stats(request.execute())
