"""Session facade tests: compile/run/suite, trace threading through the
serial and parallel harness paths, removal of the PR 2 deprecated
shims, and the typo-proof WorkloadRun.stat lookup."""

import pytest

from repro.common.config import small_config
from repro.core import DualKernel, Session
from repro.harness.runner import WorkloadRun, clear_suite_cache
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.obs import TraceConfig
from repro.runtime.memory import Segment


def _vec_add_ir():
    kb = KernelBuilder(
        "session_vec_add",
        [("a", DType.U64), ("b", DType.U64), ("c", DType.U64)],
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    x = kb.load(Segment.GLOBAL, kb.kernarg("a") + off, DType.F32)
    y = kb.load(Segment.GLOBAL, kb.kernarg("b") + off, DType.F32)
    kb.store(Segment.GLOBAL, kb.kernarg("c") + off, x + y)
    return kb.finish()


class TestSessionCompile:
    def test_compile_produces_dual_kernel(self):
        dual = Session().compile(_vec_add_ir())
        assert isinstance(dual, DualKernel)
        assert dual.hsail.static_instructions > 0
        assert dual.gcn3.static_instructions > 0

    def test_compile_needs_no_gpu_config(self):
        session = Session()
        session.compile(_vec_add_ir())
        assert session._config is None   # config stays unresolved

    def test_default_config_is_paper_machine(self):
        from repro.common.config import paper_config

        assert Session().config.fingerprint() == paper_config().fingerprint()

    def test_session_finalize_options_apply(self):
        from repro.finalizer.finalize import FinalizeOptions

        options = FinalizeOptions(independent_scheduling=False,
                                  nop_padding=False)
        session = Session(finalize_options=options)
        dual = session.compile(_vec_add_ir())
        # A per-call override beats the session default.
        overridden = session.compile(_vec_add_ir(), options=FinalizeOptions())
        assert dual.gcn3.static_instructions <= \
            overridden.gcn3.static_instructions


class TestSessionRun:
    def test_run_returns_workload_run(self):
        run = Session(small_config(2)).run("arraybw", "gcn3", scale=0.1)
        assert isinstance(run, WorkloadRun)
        assert run.verified
        assert run.trace is None   # no trace requested, none attached

    def test_run_with_trace_attaches_data(self):
        run = Session(small_config(2)).run(
            "arraybw", "gcn3", scale=0.1, trace=TraceConfig())
        assert run.trace is not None
        assert run.trace.events


class TestSessionSuite:
    def test_suite_runs_matrix(self):
        results = Session(small_config(2)).suite(
            scale=0.1, workloads=["arraybw"], use_cache=False)
        assert set(results.runs) == {("arraybw", "hsail"), ("arraybw", "gcn3")}
        assert results.all_verified()

    def test_traced_suite_attaches_traces_serially(self, tmp_path):
        results = Session(small_config(2)).suite(
            scale=0.1, workloads=["arraybw"], jobs=1,
            cache_dir=str(tmp_path / "cache"), trace=TraceConfig())
        for run in results.runs.values():
            assert run.trace is not None
            assert run.trace.by_category("issue")

    def test_traced_suite_survives_process_pool(self, tmp_path):
        """TraceConfig rides inside Job across the pool boundary and the
        recorded TraceData rides back in the worker payload."""
        results = Session(small_config(2)).suite(
            scale=0.1, workloads=["arraybw", "bitonic"], jobs=2,
            cache_dir=str(tmp_path / "cache"), trace=TraceConfig())
        assert len(results.runs) == 4
        for run in results.runs.values():
            assert run.error is None
            assert run.trace is not None
            assert len(run.trace.by_category("issue")) == \
                run.dynamic_instructions

    def test_traced_suite_bypasses_caches(self, tmp_path):
        """A traced suite must neither read nor write either cache layer."""
        cache_dir = tmp_path / "cache"
        session = Session(small_config(2))
        clear_suite_cache()
        # Warm both cache layers with an untraced suite.
        warm = session.suite(scale=0.1, workloads=["arraybw"],
                             use_disk_cache=True, cache_dir=str(cache_dir))
        n_entries = len(list(cache_dir.glob("*.json")))
        assert n_entries > 0
        traced = session.suite(scale=0.1, workloads=["arraybw"],
                               use_disk_cache=True, cache_dir=str(cache_dir),
                               trace=TraceConfig())
        assert traced is not warm                      # memo not served
        assert traced.get("arraybw", "gcn3").trace is not None
        assert len(list(cache_dir.glob("*.json"))) == n_entries  # not written
        # And the memo was not poisoned with the traced matrix.
        warm_again = session.suite(scale=0.1, workloads=["arraybw"],
                                   use_disk_cache=True,
                                   cache_dir=str(cache_dir))
        assert warm_again.get("arraybw", "gcn3").trace is None

    def test_trace_payload_round_trip(self):
        run = Session(small_config(2)).run(
            "arraybw", "gcn3", scale=0.1, trace=TraceConfig())
        again = WorkloadRun.from_payload(run.to_payload())
        assert again.trace is not None
        assert again.trace.events == run.trace.events
        assert again.trace.stall_cycles == run.trace.stall_cycles

    def test_untraced_payload_has_no_trace_key(self):
        """Golden-stats compatibility: the payload format only grows a
        'trace' key when a trace was actually recorded."""
        run = Session(small_config(2)).run("arraybw", "gcn3", scale=0.1)
        assert "trace" not in run.to_payload()


class TestShimsRemoved:
    """The PR 2 DeprecationWarning shims are gone: Session (and the
    request objects behind it) are the only doors."""

    def test_compile_dual_shim_is_gone(self):
        import repro.core
        import repro.core.api

        assert not hasattr(repro.core, "compile_dual")
        assert not hasattr(repro.core.api, "compile_dual")

    def test_run_suite_shim_is_gone(self):
        import repro.harness
        import repro.harness.runner

        assert not hasattr(repro.harness, "run_suite")
        assert not hasattr(repro.harness.runner, "run_suite")

    def test_session_paths_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session().compile(_vec_add_ir())
            Session(small_config(2)).suite(scale=0.1, workloads=["arraybw"])


class TestStatLookup:
    @pytest.fixture(scope="class")
    def run(self):
        return Session(small_config(2)).run("bitonic", "gcn3", scale=0.1)

    def test_present_metric(self, run):
        assert run.stat("cycles") > 0
        assert run.stat("l1d0_hits") >= 0

    def test_declared_but_absent_reads_zero(self, run):
        stats_without_flushes = WorkloadRun(
            workload="x", isa="gcn3", verified=True, total=run.total.__class__(),
            per_dispatch=[], dispatch_kernel_names=[],
            data_footprint_bytes=0, instr_footprint_bytes=0,
            static_instructions=0, kernel_code_bytes={}, wall_seconds=0.0)
        assert stats_without_flushes.stat("ib_flushes") == 0.0
        assert stats_without_flushes.stat("l1d5_misses") == 0.0

    def test_unknown_metric_raises_with_suggestions(self, run):
        with pytest.raises(KeyError, match="ib_flushes"):
            run.stat("ib_flushs")
        with pytest.raises(KeyError, match="unknown metric"):
            run.stat("completely_bogus_counter")
