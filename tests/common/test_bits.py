"""Bit-utility tests (exact + property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bits


class TestMaskAndFields:
    def test_mask_widths(self):
        assert bits.mask(0) == 0
        assert bits.mask(1) == 1
        assert bits.mask(8) == 0xFF
        assert bits.mask(64) == bits.MASK64

    def test_mask_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bits.mask(-1)

    def test_bits_extract(self):
        assert bits.bits(0xDEADBEEF, 15, 0) == 0xBEEF
        assert bits.bits(0xDEADBEEF, 31, 16) == 0xDEAD
        assert bits.bits(0b1010, 3, 3) == 1

    def test_bits_bad_range(self):
        with pytest.raises(ValueError):
            bits.bits(1, 0, 5)

    def test_insert_bits(self):
        assert bits.insert_bits(0, 0xAB, 15, 8) == 0xAB00
        assert bits.insert_bits(0xFFFF, 0, 7, 0) == 0xFF00

    def test_insert_bits_overflow_rejected(self):
        with pytest.raises(ValueError):
            bits.insert_bits(0, 0x100, 7, 0)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    def test_bits_insert_roundtrip(self, value, lo, width):
        hi = min(31, lo + width)
        field = bits.bits(value, hi, lo)
        assert bits.insert_bits(value, field, hi, lo) == value


class TestSignExtension:
    def test_sign_extend_basics(self):
        assert bits.sign_extend(0xFF, 8) == -1
        assert bits.sign_extend(0x7F, 8) == 127
        assert bits.sign_extend(0x8000, 16) == -32768

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_sign_roundtrip_16(self, value):
        assert bits.sign_extend(bits.to_unsigned(value, 16), 16) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_sign_roundtrip_32(self, value):
        assert bits.sign_extend(bits.to_unsigned(value, 32), 32) == value


class TestBfe:
    def test_bfe_matches_table1_encoding(self):
        # Paper Table 1: s_bfe s4, s10, 0x100000 extracts bits [15:0].
        operand = bits.pack_bfe_operand(0, 16)
        assert operand == 0x100000
        offset, width = bits.unpack_bfe_operand(operand)
        assert (offset, width) == (0, 16)
        assert bits.bit_field_extract(0xABCD1234, offset, width) == 0x1234

    def test_bfe_zero_width(self):
        assert bits.bit_field_extract(0xFFFF, 0, 0) == 0

    def test_bfe_signed(self):
        assert bits.bit_field_extract(0xF0, 4, 4, signed=True) == -1

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=1, max_value=31))
    def test_bfe_operand_roundtrip(self, _value, offset, width):
        packed = bits.pack_bfe_operand(offset, width)
        assert bits.unpack_bfe_operand(packed) == (offset, width)


class TestAlignment:
    def test_align_up(self):
        assert bits.align_up(0, 64) == 0
        assert bits.align_up(1, 64) == 64
        assert bits.align_up(64, 64) == 64
        assert bits.align_up(65, 64) == 128

    def test_align_down(self):
        assert bits.align_down(127, 64) == 64

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            bits.align_up(3, 48)

    def test_is_aligned(self):
        assert bits.is_aligned(128, 64)
        assert not bits.is_aligned(100, 64)

    def test_ilog2(self):
        assert bits.ilog2(1) == 0
        assert bits.ilog2(1024) == 10
        with pytest.raises(ValueError):
            bits.ilog2(6)

    @given(st.integers(min_value=0, max_value=10**9),
           st.sampled_from([1, 2, 4, 8, 64, 4096]))
    def test_align_properties(self, value, alignment):
        up = bits.align_up(value, alignment)
        down = bits.align_down(value, alignment)
        assert down <= value <= up
        assert up - down in (0, alignment)
        assert bits.is_aligned(up, alignment)
        assert bits.is_aligned(down, alignment)


class TestLaneMasks:
    def test_popcount(self):
        assert bits.popcount64(0) == 0
        assert bits.popcount64(bits.MASK64) == 64
        assert bits.popcount64(0b1011) == 3

    def test_lane_mask_roundtrip(self):
        lanes = [0, 5, 63]
        mask = bits.lane_mask(lanes)
        assert bits.mask_lanes(mask) == lanes

    def test_lane_out_of_range(self):
        with pytest.raises(ValueError):
            bits.lane_mask([64])

    @given(st.sets(st.integers(min_value=0, max_value=63)))
    def test_lane_mask_property(self, lanes):
        mask = bits.lane_mask(sorted(lanes))
        assert set(bits.mask_lanes(mask)) == lanes
        assert bits.popcount64(mask) == len(lanes)
