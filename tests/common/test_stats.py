"""Statistics container tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.categories import CATEGORY_ORDER, InstrCategory
from repro.common.stats import Distribution, RatioProbe, StatSet, merge_all


class TestDistribution:
    def test_median_odd(self):
        d = Distribution()
        for v in (1, 3, 2):
            d.add(v)
        assert d.median == 2

    def test_median_repeats(self):
        d = Distribution()
        d.add(5, count=100)
        d.add(1000)
        assert d.median == 5

    def test_mean_and_total(self):
        d = Distribution()
        d.add(2, count=2)
        d.add(8)
        assert d.total == 12
        assert d.mean == 4

    def test_empty(self):
        d = Distribution()
        assert d.median == 0.0
        assert d.mean == 0.0

    def test_percentiles(self):
        d = Distribution()
        for v in range(1, 101):
            d.add(v)
        assert d.percentile(1) == 1
        assert d.percentile(50) == 50
        assert d.percentile(100) == 100

    def test_percentile_zero_returns_minimum(self):
        d = Distribution()
        for v in (7, 3, 9):
            d.add(v)
        # p=0 still targets the first sample (inclusive rank >= 1).
        assert d.percentile(0) == 3

    def test_percentile_hundred_returns_maximum(self):
        d = Distribution()
        for v in (7, 3, 9):
            d.add(v)
        assert d.percentile(100) == 9

    def test_percentile_single_sample_any_p(self):
        d = Distribution()
        d.add(42)
        for p in (0, 1, 50, 99, 100):
            assert d.percentile(p) == 42

    def test_percentile_key_cache_invalidated_by_add(self):
        """The sorted-key memo must never serve stale keys after add()."""
        d = Distribution()
        d.add(10)
        assert d.percentile(100) == 10   # primes the sorted-key cache
        d.add(5)                         # new smaller bucket
        assert d.percentile(0) == 5
        d.add(20)                        # new larger bucket
        assert d.percentile(100) == 20

    def test_percentile_key_cache_invalidated_by_merge(self):
        d = Distribution()
        d.add(10)
        assert d.percentile(50) == 10    # primes the sorted-key cache
        other = Distribution()
        other.add(1, count=10)
        d.merge(other)
        assert d.percentile(0) == 1
        assert d.percentile(50) == 1     # 10 of 11 samples sit at 1

    def test_percentile_cache_reuse_matches_fresh_distribution(self):
        """Repeated queries through the memo equal a cold computation."""
        d = Distribution()
        for v in (4, 9, 2, 9, 7):
            d.add(v)
        warm = [d.percentile(p) for p in (0, 25, 50, 75, 100)]
        fresh = Distribution()
        for v in (4, 9, 2, 9, 7):
            fresh.add(v)
        cold = [fresh.percentile(p) for p in (0, 25, 50, 75, 100)]
        assert warm == cold

    def test_percentile_on_merged_buckets(self):
        """Percentiles must respect counts accumulated into one bucket
        across merges, not just distinct values."""
        a, b = Distribution(), Distribution()
        a.add(1, count=98)
        b.add(1)          # same bucket as a's samples
        b.add(1000)
        a.merge(b)
        assert a.count == 100
        assert a.percentile(50) == 1
        assert a.percentile(99) == 1
        assert a.percentile(100) == 1000

    def test_percentile_empty_is_zero(self):
        assert Distribution().percentile(0) == 0.0
        assert Distribution().percentile(100) == 0.0

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            Distribution().percentile(101)
        with pytest.raises(ValueError):
            Distribution().percentile(-0.1)

    def test_bad_count(self):
        with pytest.raises(ValueError):
            Distribution().add(1, count=0)

    def test_merge(self):
        a, b = Distribution(), Distribution()
        a.add(1, 10)
        b.add(3, 10)
        a.merge(b)
        assert a.count == 20
        assert a.mean == 2

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1))
    def test_median_is_within_samples(self, values):
        d = Distribution()
        for v in values:
            d.add(v)
        assert min(values) <= d.median <= max(values)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_median_matches_sorted_rank(self, values):
        d = Distribution()
        for v in values:
            d.add(v)
        ordered = sorted(values)
        expected = ordered[max(0, round(len(values) * 0.5) - 1)]
        assert d.median == expected


class TestRatioProbe:
    def test_value(self):
        p = RatioProbe()
        p.add(8, 32)
        p.add(32, 32)
        assert p.value == 40 / 64

    def test_empty_is_zero(self):
        assert RatioProbe().value == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RatioProbe().add(-1, 2)

    def test_merge(self):
        a, b = RatioProbe(), RatioProbe()
        a.add(1, 2)
        b.add(3, 2)
        a.merge(b)
        assert a.value == 1.0


class TestStatSet:
    def test_record_instruction(self):
        s = StatSet()
        s.record_instruction(InstrCategory.VALU, 3)
        s.record_instruction(InstrCategory.SALU)
        assert s.dynamic_instructions == 4
        assert s.instructions_by_category[InstrCategory.VALU] == 3

    def test_breakdown_order(self):
        s = StatSet()
        s.record_instruction(InstrCategory.MISC)
        breakdown = s.category_breakdown()
        assert [cat for cat, _ in breakdown] == list(CATEGORY_ORDER)
        assert breakdown[-1] == (InstrCategory.MISC, 1)

    def test_ipc(self):
        s = StatSet()
        s.record_instruction(InstrCategory.VALU, 100)
        s.bump("cycles", 50)
        assert s.ipc == 2.0

    def test_ipc_no_cycles(self):
        assert StatSet().ipc == 0.0

    def test_getitem_missing(self):
        assert StatSet()["nope"] == 0

    def test_merge_all(self):
        parts = []
        for i in range(3):
            s = StatSet()
            s.bump("cycles", 10)
            s.record_instruction(InstrCategory.VMEM, i + 1)
            s.reuse_distance.add(i + 1)
            parts.append(s)
        total = merge_all(parts)
        assert total.cycles == 30
        assert total.dynamic_instructions == 6
        assert total.reuse_distance.count == 3

    def test_snapshot_keys(self):
        s = StatSet()
        s.record_instruction(InstrCategory.LDS)
        s.bump("cycles", 5)
        s.simd_utilization.add(32, 64)
        snap = s.snapshot()
        assert snap["instr_lds"] == 1
        assert snap["cycles"] == 5
        assert snap["simd_utilization"] == 0.5
        assert "ipc" in snap


class TestCategories:
    def test_memory_flag(self):
        assert InstrCategory.VMEM.is_memory
        assert InstrCategory.SMEM.is_memory
        assert InstrCategory.LDS.is_memory
        assert not InstrCategory.VALU.is_memory
        assert not InstrCategory.BRANCH.is_memory
