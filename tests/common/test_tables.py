"""Table rendering and geomean tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.tables import format_value, geomean, render_table


class TestFormatValue:
    def test_ints_grouped(self):
        assert format_value(1234567) == "1,234,567"

    def test_floats_precision(self):
        assert format_value(1.23456) == "1.23"

    def test_large_floats(self):
        assert format_value(12345.6) == "12,346"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["Name", "N"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        # numeric column right-justified
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title(self):
        text = render_table(["A"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [[1]])

    def test_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestGeomean:
    def test_simple(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geomean([0, 2, 8]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20))
    def test_bounded_by_min_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.floats(min_value=0.01, max_value=100),
           st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=10))
    def test_scale_invariance(self, k, values):
        scaled = geomean([k * v for v in values])
        assert scaled == pytest.approx(k * geomean(values), rel=1e-9)

    def test_matches_log_definition(self):
        values = [1.5, 2.5, 3.5]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geomean(values) == pytest.approx(expected)
