"""Configuration (Table 4) tests."""

import pytest

from repro.common.config import (
    CacheConfig,
    CuConfig,
    GpuConfig,
    paper_config,
    small_config,
)
from repro.common.errors import ConfigError


class TestPaperConfig:
    """The defaults must match the paper's Table 4."""

    def test_gpu_shape(self):
        cfg = paper_config()
        assert cfg.num_cus == 8
        assert cfg.clock_mhz == 800
        assert cfg.cus_per_cluster == 4
        assert cfg.num_clusters == 2

    def test_cu_shape(self):
        cu = paper_config().cu
        assert cu.num_simds == 4
        assert cu.wavefront_size == 64
        assert cu.max_wavefronts == 40
        assert cu.vrf_entries == 2048
        assert cu.srf_entries == 800
        assert cu.wavefronts_per_simd == 10

    def test_caches(self):
        cfg = paper_config()
        assert cfg.l1d.size_bytes == 16 * 1024
        assert cfg.l1d.associativity == 0  # fully associative
        assert cfg.l1d.line_bytes == 64
        assert cfg.l1i.size_bytes == 32 * 1024
        assert cfg.l1i.associativity == 8
        assert cfg.l2.size_bytes == 512 * 1024
        assert cfg.l2.associativity == 16

    def test_dram(self):
        assert paper_config().dram.channels == 32
        assert paper_config().dram.clock_mhz == 500

    def test_wavefront_covers_simd_in_four_cycles(self):
        cu = paper_config().cu
        assert cu.wavefront_size // cu.simd_width == cu.valu_issue_cycles


class TestCacheConfig:
    def test_fully_associative_sets(self):
        cache = CacheConfig(size_bytes=16 * 1024, associativity=0)
        assert cache.num_sets == 1
        assert cache.num_lines == 256

    def test_set_associative_geometry(self):
        cache = CacheConfig(size_bytes=32 * 1024, associativity=8)
        assert cache.num_sets == 64

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=100, line_bytes=64)

    def test_bad_associativity_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=64 * 3, line_bytes=64, associativity=2)


class TestValidation:
    def test_zero_cus_rejected(self):
        with pytest.raises(ConfigError):
            GpuConfig(num_cus=0)

    def test_wavefront_not_multiple_of_simd(self):
        with pytest.raises(ConfigError):
            CuConfig(simd_width=24)

    def test_wf_slots_must_divide(self):
        with pytest.raises(ConfigError):
            CuConfig(max_wavefronts=42)

    def test_small_config(self):
        cfg = small_config(2)
        assert cfg.num_cus == 2
        assert cfg.num_clusters == 1
        assert cfg.cu.num_simds == 4  # per-CU shape is unchanged

    def test_small_config_rejects_zero(self):
        with pytest.raises(ConfigError):
            small_config(0)

    def test_scaled_override(self):
        cfg = paper_config().scaled(num_cus=4)
        assert cfg.num_cus == 4
        assert cfg.cu.vrf_entries == 2048


class TestWithOverrides:
    def test_nested_replace(self):
        cfg = paper_config().with_overrides(
            {"cu.vrf_banks": 8, "l1i.size_bytes": 65536})
        assert cfg.cu.vrf_banks == 8
        assert cfg.l1i.size_bytes == 65536
        # Everything else is untouched, including sibling nested fields.
        assert cfg.cu.vrf_entries == paper_config().cu.vrf_entries
        assert cfg.l1i.associativity == paper_config().l1i.associativity

    def test_top_level_path(self):
        assert paper_config().with_overrides({"num_cus": 4}).num_cus == 4

    def test_original_untouched(self):
        base = paper_config()
        base.with_overrides({"cu.vrf_banks": 16})
        assert base.cu.vrf_banks != 16 or \
            base.cu.vrf_banks == CuConfig().vrf_banks

    def test_empty_overrides_is_identity(self):
        base = paper_config()
        assert base.with_overrides({}).fingerprint() == base.fingerprint()

    def test_fingerprint_changes(self):
        base = paper_config()
        assert base.with_overrides({"cu.vrf_banks": 16}).fingerprint() \
            != base.fingerprint()

    def test_unknown_field_names_path(self):
        with pytest.raises(ConfigError, match=r"cu\.nope"):
            paper_config().with_overrides({"cu.nope": 1})

    def test_unknown_field_hints_candidates(self):
        with pytest.raises(ConfigError, match="vrf_banks"):
            paper_config().with_overrides({"cu.vrf_bank": 8})

    def test_non_dataclass_leaf_rejected(self):
        with pytest.raises(ConfigError, match=r"num_cus\.x"):
            paper_config().with_overrides({"num_cus.x": 1})

    def test_validation_reruns_and_names_path(self):
        # 100 B violates the line-size invariant deep in CacheConfig.
        with pytest.raises(ConfigError, match=r"l1i\.size_bytes"):
            paper_config().with_overrides({"l1i.size_bytes": 100})

    def test_top_level_validation_reruns(self):
        with pytest.raises(ConfigError):
            paper_config().with_overrides({"num_cus": 0})
