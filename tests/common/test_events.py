"""Event-queue determinism and clock tests."""

import pytest

from repro.common.errors import TimingError
from repro.common.events import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(5, lambda: log.append("b"))
        q.schedule(2, lambda: log.append("a"))
        q.schedule(9, lambda: log.append("c"))
        q.advance_to(10)
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        log = []
        for name in "abcd":
            q.schedule(3, lambda n=name: log.append(n))
        q.advance_to(3)
        assert log == ["a", "b", "c", "d"]

    def test_now_tracks_fired_event(self):
        q = EventQueue()
        seen = []
        q.schedule(4, lambda: seen.append(q.now))
        q.advance_to(10)
        assert seen == [4]
        assert q.now == 10

    def test_events_scheduled_during_processing_fire(self):
        q = EventQueue()
        log = []
        q.schedule(1, lambda: q.schedule(1, lambda: log.append("nested")))
        q.advance_to(5)
        assert log == ["nested"]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(TimingError):
            q.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.advance_to(10)
        with pytest.raises(TimingError):
            q.schedule_at(5, lambda: None)

    def test_clock_cannot_go_backwards(self):
        q = EventQueue()
        q.advance_to(10)
        with pytest.raises(TimingError):
            q.advance_to(9)


class TestFastForward:
    def test_jumps_to_next_event(self):
        q = EventQueue()
        fired = []
        q.schedule(100, lambda: fired.append(True))
        assert q.fast_forward()
        assert q.now == 100
        assert fired == [True]

    def test_returns_false_when_empty(self):
        q = EventQueue()
        assert not q.fast_forward()

    def test_next_event_cycle(self):
        q = EventQueue()
        assert q.next_event_cycle() is None
        q.schedule(7, lambda: None)
        assert q.next_event_cycle() == 7

    def test_tick_advances_one(self):
        q = EventQueue()
        q.tick()
        q.tick()
        assert q.now == 2

    def test_len_counts_pending(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        assert len(q) == 2
        q.advance_to(1)
        assert len(q) == 1
