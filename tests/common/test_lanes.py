"""Lane-mask and LDS helper tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ExecutionError
from repro.common.lanes import (
    FULL_MASK,
    bool_to_mask,
    lds_gather_u32,
    lds_scatter_u32,
    mask_to_bool,
    touched_lines,
)


class TestMaskConversion:
    def test_full(self):
        assert mask_to_bool(FULL_MASK).all()
        assert bool_to_mask(np.ones(64, dtype=bool)) == FULL_MASK

    def test_empty(self):
        assert not mask_to_bool(0).any()

    def test_single_lane(self):
        m = mask_to_bool(1 << 17)
        assert m[17] and m.sum() == 1

    @given(st.integers(min_value=0, max_value=FULL_MASK))
    def test_roundtrip(self, bits):
        assert bool_to_mask(mask_to_bool(bits)) == bits


class TestTouchedLines:
    def test_single_line(self):
        addrs = np.full(64, 128, dtype=np.uint64)
        mask = np.ones(64, dtype=bool)
        assert touched_lines(addrs, mask, 4) == [2]

    def test_straddling_access(self):
        addrs = np.full(64, 60, dtype=np.uint64)
        mask = np.zeros(64, dtype=bool)
        mask[0] = True
        # an 8-byte access at 60 touches lines 0 and 1
        assert touched_lines(addrs, mask, 8) == [0, 1]

    def test_inactive_lanes_ignored(self):
        addrs = np.arange(64, dtype=np.uint64) * 64
        mask = np.zeros(64, dtype=bool)
        assert touched_lines(addrs, mask, 4) == []


class TestLdsAccess:
    def test_scatter_gather_roundtrip(self):
        lds = np.zeros(1024, dtype=np.uint8)
        addrs = (np.arange(64, dtype=np.uint64) * 4)
        values = np.arange(64, dtype=np.uint32) * 3 + 1
        mask = np.ones(64, dtype=bool)
        lds_scatter_u32(lds, addrs, values, mask)
        out = lds_gather_u32(lds, addrs, mask)
        assert np.array_equal(out, values)

    def test_masked_lanes_untouched(self):
        lds = np.zeros(256, dtype=np.uint8)
        addrs = np.arange(64, dtype=np.uint64) * 4
        values = np.full(64, 7, dtype=np.uint32)
        mask = np.zeros(64, dtype=bool)
        mask[3] = True
        lds_scatter_u32(lds, addrs, values, mask)
        assert lds.view(np.uint32)[3] == 7
        assert lds.view(np.uint32)[4] == 0

    def test_out_of_bounds_raises(self):
        lds = np.zeros(16, dtype=np.uint8)
        addrs = np.full(64, 14, dtype=np.uint64)
        mask = np.ones(64, dtype=bool)
        with pytest.raises(ExecutionError):
            lds_gather_u32(lds, addrs, mask)
        with pytest.raises(ExecutionError):
            lds_scatter_u32(lds, addrs, np.zeros(64, dtype=np.uint32), mask)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=64, unique=True),
           st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=64,
                    max_size=64))
    def test_gather_reads_what_scatter_wrote(self, lanes, raw_values):
        lds = np.zeros(512, dtype=np.uint8)
        addrs = np.arange(64, dtype=np.uint64) * 8
        values = np.array(raw_values, dtype=np.uint32)
        mask = np.zeros(64, dtype=bool)
        mask[lanes] = True
        lds_scatter_u32(lds, addrs, values, mask)
        out = lds_gather_u32(lds, addrs, mask)
        assert np.array_equal(out[mask], values[mask])
        assert (out[~mask] == 0).all()
