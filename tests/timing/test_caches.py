"""Cache hierarchy and DRAM model tests."""

import pytest

from repro.common.config import CacheConfig, DramConfig, paper_config
from repro.common.stats import StatSet
from repro.timing.caches import Cache, Dram, MemorySystem


class TestCache:
    def make(self, assoc=2, lines=8):
        return Cache("t", CacheConfig(size_bytes=64 * lines, associativity=assoc,
                                      hit_latency=4))

    def test_miss_then_hit(self):
        c = self.make()
        assert not c.lookup(5)
        c.fill(5)
        assert c.lookup(5)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction(self):
        c = self.make(assoc=2, lines=8)  # 4 sets
        # lines 0, 4, 8 map to set 0 (line % 4)
        c.fill(0)
        c.fill(4)
        c.lookup(0)      # 0 becomes MRU
        c.fill(8)        # evicts 4
        assert c.lookup(0)
        assert not c.lookup(4)

    def test_fully_associative(self):
        c = Cache("fa", CacheConfig(size_bytes=64 * 4, associativity=0))
        for line in (0, 1, 2, 3):
            c.fill(line)
        assert all(c.lookup(line) for line in (0, 1, 2, 3))
        c.fill(99)  # evicts line 0 (LRU after the lookups... it's 0)
        assert c.contains(99)

    def test_port_serialization(self):
        c = self.make()
        assert c.port_delay(10) == 0
        assert c.port_delay(10) == 1  # second request waits a slot
        assert c.port_delay(10) == 2

    def test_stats_export_and_reset(self):
        c = self.make()
        c.lookup(1)
        c.fill(1)
        c.lookup(1)
        stats = StatSet()
        c.export_stats(stats)
        assert stats["t_hits"] == 1 and stats["t_misses"] == 1
        c.reset_counters()
        assert c.hits == 0


class TestDram:
    def test_base_latency(self):
        d = Dram(DramConfig(channels=4, base_latency_cycles=100,
                            cycles_per_burst=4))
        assert d.access(0, now=10) == 110

    def test_channel_occupancy_queues(self):
        d = Dram(DramConfig(channels=4, base_latency_cycles=100,
                            cycles_per_burst=4))
        first = d.access(0, now=0)
        second = d.access(4, now=0)  # same channel (4 % 4 == 0)
        assert second == first + 4

    def test_different_channels_parallel(self):
        d = Dram(DramConfig(channels=4, base_latency_cycles=100,
                            cycles_per_burst=4))
        assert d.access(0, now=0) == d.access(1, now=0)


class TestMemorySystem:
    def make(self):
        return MemorySystem(paper_config(), StatSet())

    def test_miss_slower_than_hit(self):
        ms = self.make()
        miss_done = ms.vector_access(0, [100], is_write=False, now=0)
        hit_done = ms.vector_access(0, [100], is_write=False, now=miss_done)
        assert (hit_done - miss_done) < miss_done

    def test_l2_shared_within_cluster(self):
        ms = self.make()
        ms.vector_access(0, [200], is_write=False, now=0)
        # CU 1 shares the cluster's L2: its L1 misses but the L2 hits.
        l2_hits_before = ms.l2[0].hits
        ms.vector_access(1, [200], is_write=False, now=1000)
        assert ms.l2[0].hits == l2_hits_before + 1

    def test_clusters_are_independent(self):
        ms = self.make()
        ms.vector_access(0, [300], is_write=False, now=0)
        # CU 4 is in the second cluster: fresh L2
        before = ms.l2[1].misses
        ms.vector_access(4, [300], is_write=False, now=1000)
        assert ms.l2[1].misses == before + 1

    def test_write_through_latency_hidden(self):
        ms = self.make()
        done = ms.vector_access(0, [400], is_write=True, now=0)
        # writes complete at L2 speed, not DRAM speed
        assert done < ms.config.dram.base_latency_cycles

    def test_scalar_cache_separate_from_l1d(self):
        ms = self.make()
        ms.scalar_access(0, [500], now=0)
        assert ms.scalar[0].misses == 1
        assert ms.l1d[0].misses == 0

    def test_ifetch_counts(self):
        ms = self.make()
        stats = ms.stats
        ms.ifetch(0, 600, now=0)
        ms.ifetch(0, 600, now=100)
        assert stats["ifetch_requests"] == 2
        assert stats["ifetch_misses"] == 1

    def test_multi_line_request_completion_is_worst_case(self):
        ms = self.make()
        single = ms.vector_access(0, [700], is_write=False, now=0)
        ms2 = self.make()
        multi = ms2.vector_access(0, list(range(800, 816)), is_write=False, now=0)
        assert multi >= single
