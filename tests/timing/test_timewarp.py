"""Warp-vs-scan bit-identity suite for the time-warp timing engine.

``timing="warp"`` restructures the per-cycle control flow — per-CU
completion queues, array-backed wake arbitration, closed-form superop
chain bursts — and is only admissible if it changes *nothing*
observable.  This file proves it against the per-instruction reference
walk (``timing="scan"``) the hard way:

* every workload x ISA cell of the tier-1 suite, in all three execution
  modes (execute-at-issue, trace capture, trace replay): StatSet
  payloads, cycle counts, and verification verdicts must match bit for
  bit, and captured trace *blobs* must hash identically;
* the stall/occupancy observability report of a fully traced run must
  render to the same text under either engine;
* run-twice determinism must hold per engine;
* seeded hypothesis fuzz over waitcnt-heavy and bank-conflict-heavy
  instruction mixes on both ISAs (derandomized, so CI failures
  reproduce locally from the printed example).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.core import Session
from repro.harness.cache import TraceStore
from repro.harness.runner import ISAS, run_workload
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.obs import text_report
from repro.obs.trace import TraceConfig
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu
from repro.timing.timewarp import resolve_timing
from repro.workloads import all_workloads

SCALE = 0.1
SEED = 7
TIMINGS = ("warp", "scan")

#: every tier-1 cell — the full 20-cell matrix, not a sample.
CELLS = [(w.name, isa) for w in all_workloads() for isa in ISAS]

#: cells with enough waitcnt / scoreboard traffic to exercise the
#: closed-form burst boundaries under tracing without running the whole
#: matrix through the (slow) fully-instrumented path.
TRACED_CELLS = [("fft", "gcn3"), ("comd", "hsail")]


def _cfg(timing):
    return small_config(2).with_overrides({"timing": timing})


def _stats_payload(run):
    """Everything statistical about a run (wall clock and trace excluded)."""
    payload = run.to_payload()
    payload.pop("wall_seconds")
    payload.pop("trace", None)
    payload.pop("execution", None)
    return payload


def _run(workload, isa, timing, **kw):
    return run_workload(workload, isa, scale=SCALE, config=_cfg(timing),
                        seed=SEED, **kw)


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


def test_resolve_timing(monkeypatch):
    monkeypatch.delenv("REPRO_TIMING", raising=False)
    assert resolve_timing("auto") == "warp"
    assert resolve_timing("scan") == "scan"
    monkeypatch.setenv("REPRO_TIMING", "scan")
    assert resolve_timing("auto") == "scan"
    # an explicit config choice always beats the environment
    assert resolve_timing("warp") == "warp"
    monkeypatch.setenv("REPRO_TIMING", "bogus")
    with pytest.raises(ConfigError):
        resolve_timing("auto")
    with pytest.raises(ConfigError):
        resolve_timing("bogus")


# ---------------------------------------------------------------------------
# Full-matrix identity: execute, capture, replay
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload,isa", CELLS)
def test_execute_identity(workload, isa):
    warp = _run(workload, isa, "warp")
    scan = _run(workload, isa, "scan")
    assert warp.verified and scan.verified
    assert warp.cycles == scan.cycles
    assert _stats_payload(warp) == _stats_payload(scan)


@pytest.fixture(scope="module")
def capture_stores(tmp_path_factory):
    """Capture every cell once per engine; returns {timing: (store,
    payloads)} so the capture- and replay-identity tests share the
    simulation work."""
    out = {}
    for timing in TIMINGS:
        store = TraceStore(tmp_path_factory.mktemp(f"warp-{timing}"))
        payloads = {}
        for workload, isa in CELLS:
            run = _run(workload, isa, timing, execution="capture",
                       trace_store=store)
            assert run.verified, f"{workload}/{isa} capture unverified"
            payloads[(workload, isa)] = _stats_payload(run)
        out[timing] = (store, payloads)
    return out


@pytest.mark.parametrize("workload,isa", CELLS)
def test_capture_identity(capture_stores, workload, isa):
    _, warp = capture_stores["warp"]
    _, scan = capture_stores["scan"]
    assert warp[(workload, isa)] == scan[(workload, isa)]


def test_capture_blobs_hash_identical(capture_stores):
    """The stored trace bytes — not just the statistics — must agree:
    a warp-captured trace is interchangeable with a scan-captured one."""
    digests = {}
    for timing in TIMINGS:
        store, _ = capture_stores[timing]
        digests[timing] = {
            p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(store.directory.glob("*.trace"))
        }
    assert digests["warp"], "capture produced no trace blobs"
    assert digests["warp"] == digests["scan"]


@pytest.mark.parametrize("workload,isa", CELLS)
def test_replay_identity(capture_stores, workload, isa):
    store, _ = capture_stores["scan"]
    warp = _run(workload, isa, "warp", execution="replay", trace_store=store)
    scan = _run(workload, isa, "scan", execution="replay", trace_store=store)
    assert warp.execution == scan.execution == "replay"
    assert warp.cycles == scan.cycles
    assert _stats_payload(warp) == _stats_payload(scan)


# ---------------------------------------------------------------------------
# Observability: traced runs and their stall/occupancy report
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload,isa", TRACED_CELLS)
def test_traced_report_identity(workload, isa):
    """Tracing forces the exhaustive per-cycle bookkeeping either way;
    the rendered stall-reason / occupancy / cache report — the
    user-facing observability surface — must be character-identical."""
    warp = _run(workload, isa, "warp", trace=TraceConfig())
    scan = _run(workload, isa, "scan", trace=TraceConfig())
    assert warp.trace is not None and scan.trace is not None
    assert warp.trace.stall_cycles == scan.trace.stall_cycles
    assert _stats_payload(warp) == _stats_payload(scan)
    title = f"{workload}/{isa}"
    assert (text_report(warp.trace, stats=warp.total, title=title)
            == text_report(scan.trace, stats=scan.total, title=title))


# ---------------------------------------------------------------------------
# Determinism per engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("timing", TIMINGS)
@pytest.mark.parametrize("workload,isa",
                         [("fft", "gcn3"), ("lulesh", "hsail")])
def test_run_twice_is_bit_identical(workload, isa, timing):
    first = _run(workload, isa, timing)
    second = _run(workload, isa, timing)
    assert first.verified and second.verified
    assert _stats_payload(first) == _stats_payload(second)


# ---------------------------------------------------------------------------
# Seeded fuzz: warp vs scan on generated kernels
# ---------------------------------------------------------------------------

N = 128  # two wavefronts, so inter-wavefront arbitration is exercised

_INT_BINOPS = ["add", "sub", "mul", "bit_and", "bit_or", "bit_xor",
               "min", "max"]

_FUZZ_SETTINGS = settings(max_examples=6, deadline=None, derandomize=True,
                          suppress_health_check=[HealthCheck.too_slow])


def _dispatch(dual, isa, data):
    proc = GpuProcess(isa)
    inp = proc.upload(data)
    out = proc.alloc_buffer(4 * N)
    proc.dispatch(dual.for_isa(isa), grid=N, wg=64, kernargs=[inp, out])
    return proc


def _assert_timings_identical(build, program, data_seed):
    data = (np.random.default_rng(data_seed)
            .integers(1, 2**16, N).astype(np.uint32))
    dual = Session().compile(build(program))
    for isa in ("hsail", "gcn3"):
        results = {}
        for timing in TIMINGS:
            gpu = Gpu(_cfg(timing), _dispatch(dual, isa, data))
            stats = [s.to_payload() for s in gpu.run_all()]
            results[timing] = (gpu.events.now, stats)
        assert results["warp"] == results["scan"], (
            f"warp diverged from scan on {isa}")


@st.composite
def waitcnt_heavy_programs(draw):
    """Load-then-immediately-consume chains: on GCN3 the finalizer has
    to drop an ``s_waitcnt`` in front of nearly every consumer (and the
    HSAIL scoreboard blocks the same way), so the generated stream is
    dense with exactly the park/unpark boundaries the warp engine's
    closed-form burst must refuse to cross."""
    ops = []
    for _ in range(draw(st.integers(min_value=3, max_value=8))):
        ops.append((
            draw(st.integers(min_value=0, max_value=3)),   # address shear
            draw(st.sampled_from(_INT_BINOPS)),            # consumer op
            draw(st.integers(min_value=0, max_value=2)),   # ALU padding
        ))
    return ops


def _build_waitcnt_heavy(ops):
    kb = KernelBuilder("fuzz_waitcnt", [("inp", DType.U64),
                                        ("out", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    inp = kb.kernarg("inp")
    acc = kb.var(DType.U32, kb.load(Segment.GLOBAL, inp + off, DType.U32))
    for shift, op, pad in ops:
        addr = inp + kb.cvt(kb.bit_and(kb.shl(tid, shift), N - 1),
                            DType.U64) * 4
        loaded = kb.load(Segment.GLOBAL, addr, DType.U32)
        # consume the load right away: forces a waitcnt/scoreboard stall
        kb.assign(acc, getattr(kb, op)(acc, loaded))
        for _ in range(pad):  # a little independent ALU between loads
            kb.assign(acc, kb.add(acc, 1))
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, acc)
    return kb.finish()


@given(waitcnt_heavy_programs(), st.integers(min_value=0, max_value=2**31))
@_FUZZ_SETTINGS
def test_fuzz_waitcnt_heavy(program, data_seed):
    _assert_timings_identical(_build_waitcnt_heavy, program, data_seed)


@st.composite
def bank_conflict_programs(draw):
    """Long operand chains over a rolling register window: VRF bank
    conflicts stretch issue latencies unevenly, which is exactly what
    the burst's per-issue ``nt`` arithmetic has to reproduce."""
    picks = []
    for _ in range(draw(st.integers(min_value=12, max_value=28))):
        picks.append((
            draw(st.sampled_from(_INT_BINOPS)),
            draw(st.integers(min_value=0, max_value=5)),
            draw(st.integers(min_value=0, max_value=5)),
        ))
    return picks


def _build_bank_conflict(picks):
    kb = KernelBuilder("fuzz_banks", [("inp", DType.U64), ("out", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    loaded = kb.load(Segment.GLOBAL, kb.kernarg("inp") + off, DType.U32)
    window = [tid, loaded, kb.add(tid, loaded), kb.bit_xor(tid, loaded),
              kb.mul(loaded, 3), kb.shl(tid, 2)]
    for op, a, b in picks:
        window = window[1:] + [getattr(kb, op)(window[a], window[b])]
    result = window[0]
    for v in window[1:]:
        result = kb.bit_xor(result, v)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, result)
    return kb.finish()


@given(bank_conflict_programs(), st.integers(min_value=0, max_value=2**31))
@_FUZZ_SETTINGS
def test_fuzz_bank_conflict_heavy(program, data_seed):
    _assert_timings_identical(_build_bank_conflict, program, data_seed)
