"""Unit tests for the functional trace: streams, serialization, cursor."""

import pytest

from repro.common.exec_types import ExecResult, MemKind
from repro.common.stats import StatSet
from repro.timing.replay import (
    TRACE_FORMAT_VERSION,
    ExecTrace,
    ReplayCursor,
    TraceError,
    TraceRecorder,
    WfStream,
)


def _result(**kw) -> ExecResult:
    r = ExecResult()
    for key, value in kw.items():
        setattr(r, key, value)
    return r


def _sample_trace() -> ExecTrace:
    """A tiny hand-built two-wavefront trace exercising every stream."""
    rec = TraceRecorder()
    s0 = rec.stream(0)
    s0.record(0, _result(active_lanes=4), False, 4, None, None)
    s0.record(1, _result(active_lanes=4, mem_kind=MemKind.GLOBAL_LOAD,
                         mem_lines=[64, 128]), True, 4, [2], [1])
    s0.record(2, _result(active_lanes=2, branch_taken=True, next_pc=7),
              False, 2, None, None)
    s0.jump(9)
    s0.record(9, _result(active_lanes=4, ends_wavefront=True),
              False, 4, None, None)
    s1 = rec.stream(1)
    s1.record(0, _result(active_lanes=1, is_barrier=True), False, 1,
              None, None)
    s1.record(1, _result(active_lanes=1, ends_wavefront=True), False, 1,
              None, None)
    return rec.finish({"verified": True, "workload": "unit", "isa": "gcn3"})


class TestRecorder:
    def test_streams_must_be_created_in_order(self):
        rec = TraceRecorder()
        rec.stream(0)
        with pytest.raises(TraceError):
            rec.stream(2)

    def test_finish_stamps_format_and_counts(self):
        trace = _sample_trace()
        assert trace.meta["format"] == TRACE_FORMAT_VERSION
        assert trace.meta["wavefronts"] == 2
        assert trace.verified
        assert trace.dynamic_instructions == 6  # jumps are not instructions
        assert trace.approx_bytes() > 0


class TestSerialization:
    def test_roundtrip_is_exact(self):
        trace = _sample_trace()
        loaded = ExecTrace.from_bytes(trace.to_bytes())
        assert loaded.meta == trace.meta
        assert len(loaded.streams) == len(trace.streams)
        for a, b in zip(loaded.streams, trace.streams):
            for name in WfStream.__slots__:
                assert getattr(a, name) == getattr(b, name), name

    def test_bad_magic(self):
        with pytest.raises(TraceError, match="magic"):
            ExecTrace.from_bytes(b"definitely not a trace")

    def test_truncated_header(self):
        blob = _sample_trace().to_bytes()
        with pytest.raises(TraceError):
            ExecTrace.from_bytes(blob[:10])

    def test_truncated_stream_payload(self):
        blob = _sample_trace().to_bytes()
        with pytest.raises(TraceError, match="truncated"):
            ExecTrace.from_bytes(blob[:-3])

    def test_trailing_garbage(self):
        blob = _sample_trace().to_bytes()
        with pytest.raises(TraceError, match="trailing"):
            ExecTrace.from_bytes(blob + b"xx")

    def test_stale_format_version(self):
        trace = _sample_trace()
        trace.meta["format"] = TRACE_FORMAT_VERSION + 1
        with pytest.raises(TraceError, match="format"):
            ExecTrace.from_bytes(trace.to_bytes())


class TestReplayCursor:
    def test_replays_the_recorded_outcomes(self):
        trace = _sample_trace()
        cur = trace.cursor(0, kernel=None, is_gcn3=True)
        stats = StatSet()

        assert cur.take_jump() is None
        r = cur.advance(0, False, (), (), stats)
        assert (r.active_lanes, r.mem_kind) == (4, MemKind.NONE)
        assert cur.pc == 1 and not cur.done

        r = cur.advance(1, True, (3,), (5,), stats)
        assert r.mem_kind == MemKind.GLOBAL_LOAD
        assert list(r.mem_lines) == [64, 128]
        # the probe outcome lands in the StatSet, not in the result
        assert (stats.read_uniqueness.numerator,
                stats.read_uniqueness.denominator) == (2, 4)
        assert (stats.write_uniqueness.numerator,
                stats.write_uniqueness.denominator) == (1, 4)

        r = cur.advance(2, False, (), (), stats)
        assert r.branch_taken and r.next_pc == 7
        assert cur.pc == 7

        assert cur.take_jump() == 9          # reconvergence overrides pc
        assert cur.pc == 9
        r = cur.advance(9, False, (), (), stats)
        assert r.ends_wavefront and cur.done

    def test_second_wavefront_is_independent(self):
        trace = _sample_trace()
        cur = trace.cursor(1, kernel=None, is_gcn3=False)
        r = cur.advance(0, False, (), (), StatSet())
        assert r.is_barrier and r.active_lanes == 1

    def test_pc_desync_aborts(self):
        cur = _sample_trace().cursor(0, kernel=None, is_gcn3=True)
        with pytest.raises(TraceError, match="desynchronized"):
            cur.advance(5, False, (), (), StatSet())

    def test_overrun_aborts(self):
        trace = _sample_trace()
        cur = trace.cursor(1, kernel=None, is_gcn3=False)
        stats = StatSet()
        cur.advance(0, False, (), (), stats)
        cur.advance(1, False, (), (), stats)
        with pytest.raises(TraceError, match="past the end"):
            cur.advance(2, False, (), (), stats)

    def test_unknown_wavefront_aborts(self):
        with pytest.raises(TraceError, match="wavefronts"):
            _sample_trace().cursor(7, kernel=None, is_gcn3=True)

    def test_functional_standins_are_inert(self):
        cur = _sample_trace().cursor(0, kernel=None, is_gcn3=True)
        assert cur.rs == () and cur.regs is None and cur.vgpr is None
        assert ReplayCursor.exec_mask == 0
