"""Differential harness for the vectorized replay engine.

The vector engine (timing/vector.py) batch-decodes recorded wavefront
streams and folds order-independent statistics as array reductions; the
scalar ReplayCursor is the per-issue reference.  These tests prove the
two are *bit-identical* — every counter, ratio, and distribution of the
returned StatSet payloads — across the full 20-cell workload x ISA
matrix, and pin down the engine-selection semantics
(:func:`repro.timing.vector.resolve_engine`).
"""

import pytest

from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.common.stats import StatSet
from repro.common.xp import backend_name
from repro.harness.cache import TraceStore, trace_fingerprint
from repro.harness.runner import ISAS, clear_suite_cache, run_workload
from repro.timing.replay import TraceError
from repro.timing.vector import ENGINES, resolve_engine, vector_cursor
from repro.workloads import all_workloads

SCALE = 0.1

#: The full differential matrix: every registered workload under both
#: ISAs — 20 cells.
CELLS = [(w.name, isa) for w in all_workloads() for isa in ISAS]


def _strip(run):
    """A run's payload minus the fields allowed to differ across modes."""
    payload = run.to_payload()
    payload.pop("wall_seconds", None)
    payload.pop("execution", None)
    return payload


def _config(engine="auto"):
    return small_config(2).with_overrides({"engine": engine})


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return TraceStore(tmp_path_factory.mktemp("vector-traces"))


@pytest.fixture(scope="module")
def captured(store):
    """Execute-at-issue (capture) runs for every cell — the reference
    statistics each replay engine must reproduce exactly."""
    clear_suite_cache()
    cfg = _config()
    return {
        (name, isa): run_workload(name, isa, scale=SCALE, config=cfg,
                                  execution="capture", trace_store=store)
        for name, isa in CELLS
    }


@pytest.mark.parametrize("workload,isa", CELLS,
                         ids=[f"{w}-{i}" for w, i in CELLS])
@pytest.mark.parametrize("engine", ["scalar", "vector"])
class TestDifferentialMatrix:
    def test_replay_bit_identical_to_execute(self, store, captured,
                                             workload, isa, engine):
        """scalar-execute vs {scalar,vector}-replay on every cell."""
        rep = run_workload(workload, isa, scale=SCALE,
                           config=_config(engine),
                           execution="replay", trace_store=store)
        assert rep.execution == "replay"
        assert _strip(rep) == _strip(captured[(workload, isa)]), (
            f"{workload}/{isa} diverged under the {engine} engine")


class TestEnginesAgreeAcrossTimingConfigs:
    def test_swept_cell_identity(self, store, captured):
        """The two engines must also agree on a *different* timing
        config than the capture ran under — the sweep regime."""
        swept = {"l1d.size_bytes": 1 << 15, "cu.vrf_banks": 8}
        runs = {
            engine: run_workload(
                "lulesh", "gcn3", scale=SCALE,
                config=_config(engine).with_overrides(swept),
                execution="replay", trace_store=store)
            for engine in ("scalar", "vector")
        }
        assert _strip(runs["scalar"]) == _strip(runs["vector"])

    def test_decode_is_shared_across_cells(self, store, captured):
        """Replaying the same trace twice reuses one parsed ExecTrace and
        one batch decode per wavefront (the sweep-amortization memo)."""
        fp = trace_fingerprint(_config(), "spmv", "gcn3", SCALE, 7)
        run_workload("spmv", "gcn3", scale=SCALE, config=_config("vector"),
                     execution="replay", trace_store=store)
        trace = store.get(fp)
        assert trace is not None
        assert store.get(fp) is trace  # parsed-trace memo
        assert trace._decode_cache     # per-wavefront decode memo
        decoded = dict(trace._decode_cache)
        run_workload("spmv", "gcn3", scale=SCALE,
                     config=_config("vector").with_overrides(
                         {"l1d.size_bytes": 1 << 15}),
                     execution="replay", trace_store=store)
        for wf_id, dec in decoded.items():
            assert trace._decode_cache[wf_id] is dec


class TestResolveEngine:
    def test_engines_registry(self):
        assert ENGINES == ("auto", "scalar", "vector")

    def test_execute_cells_always_scalar(self):
        for requested in ENGINES:
            assert resolve_engine(requested, replay=False,
                                  traced=False) == "scalar"

    def test_traced_replay_stays_scalar(self):
        # event-traced runs need the scalar engine's exhaustive
        # per-issue emission
        assert resolve_engine("vector", replay=True, traced=True) == "scalar"
        assert resolve_engine("auto", replay=True, traced=True) == "scalar"

    def test_explicit_engines_win_on_replay(self):
        assert resolve_engine("scalar", replay=True, traced=False) == "scalar"
        assert resolve_engine("vector", replay=True, traced=False) == "vector"

    def test_auto_follows_the_backend(self):
        resolved = resolve_engine("auto", replay=True, traced=False)
        expected = "vector" if backend_name() == "numpy" else "scalar"
        assert resolved == expected

    def test_env_override_applies_to_auto_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine("auto", replay=True, traced=False) == "vector"
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        assert resolve_engine("auto", replay=True, traced=False) == "scalar"
        # explicit config knob beats the environment
        assert resolve_engine("vector", replay=True, traced=False) == "vector"

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            resolve_engine("simd", replay=True, traced=False)

    def test_bad_env_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigError, match="REPRO_ENGINE"):
            resolve_engine("auto", replay=True, traced=False)

    def test_config_validates_engine(self):
        with pytest.raises(ConfigError):
            _config("warp")

    def test_engine_in_timing_fingerprint_only(self):
        scalar, vector = _config("scalar"), _config("vector")
        assert scalar.fingerprint() != vector.fingerprint()
        # the dynamic instruction stream cannot depend on the engine
        assert (scalar.functional_fingerprint()
                == vector.functional_fingerprint())


class TestVectorCursorErrors:
    def _trace(self, store):
        fp = trace_fingerprint(_config(), "arraybw", "gcn3", SCALE, 7)
        trace = store.get(fp)
        assert trace is not None
        return trace

    def _kernel(self, captured):
        from repro.runtime.process import GpuProcess
        from repro.workloads import create

        process = GpuProcess("gcn3", memory_capacity=1 << 25)
        create("arraybw", scale=SCALE, seed=7).stage(process, "gcn3")
        return process.dispatches[0].kernel

    def test_unknown_wavefront_aborts(self, store, captured):
        trace = self._trace(store)
        kernel = self._kernel(captured)
        with pytest.raises(TraceError, match="wavefront"):
            vector_cursor(trace, 10_000, kernel, True, StatSet())

    def test_pc_desync_aborts(self, store, captured):
        trace = self._trace(store)
        kernel = self._kernel(captured)
        cur = vector_cursor(trace, 0, kernel, True, StatSet())
        with pytest.raises(TraceError, match="desynchronized"):
            cur.advance(999_999)

    def test_overrun_aborts(self, store, captured):
        trace = self._trace(store)
        kernel = self._kernel(captured)
        stats = StatSet()
        cur = vector_cursor(trace, 0, kernel, True, stats)
        while not cur.done:
            jump = cur.take_jump()
            cur.advance(jump if jump is not None else cur.pc)
        with pytest.raises(TraceError, match="past the end"):
            cur.advance(cur.pc)

    def test_fold_matches_scalar_walk(self, store, captured):
        """The batched fold and a full scalar walk of the same stream
        must produce identical order-independent statistics."""
        trace = self._trace(store)
        kernel = self._kernel(captured)
        vec_stats = StatSet()
        cur = vector_cursor(trace, 0, kernel, True, vec_stats)
        while not cur.done:
            jump = cur.take_jump()
            cur.advance(jump if jump is not None else cur.pc)

        from repro.timing.predecode import UNIT_SIMD, predecode_kernel
        from repro.timing.registerfile import VrfModel

        descs = predecode_kernel(kernel)
        sca_stats = StatSet()
        vrf = VrfModel(4, sca_stats)
        tracker = {}
        sca = trace.cursor(0, kernel, True)
        counter = 0
        while not sca.done:
            jump = sca.take_jump()
            pc = jump if jump is not None else sca.pc
            desc = descs[pc]
            counter += 1
            sca_stats.record_instruction(desc.category)
            vrf.record_reuse(tracker, counter, desc.rw_slots)
            result = sca.advance(pc, (counter & 3) == 0, desc.read_slots,
                                 desc.write_slots, sca_stats)
            if desc.unit == UNIT_SIMD:
                sca_stats.simd_utilization.add(result.active_lanes, 64)
        assert vec_stats.to_payload() == sca_stats.to_payload()
