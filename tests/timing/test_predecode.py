"""Predecode equivalence: descriptors vs the raw instruction stream.

The issue stage trusts :mod:`repro.timing.predecode` completely — it
never looks at the raw instruction again.  These tests walk every
kernel of every registered workload, in both ISAs, and check each
:class:`IssueDesc` field against an independent recomputation from the
raw instruction, so a predecode bug cannot hide behind the cache.
"""

import pytest

from repro.common.categories import InstrCategory
from repro.gcn3 import isa as gcn3_isa
from repro.gcn3.isa import Gcn3Kernel
from repro.hsail import isa as hsail_isa
from repro.hsail.isa import HSAIL_INSTR_BYTES
from repro.timing.predecode import (
    UNIT_BRANCH,
    UNIT_LDS,
    UNIT_SCALAR,
    UNIT_SIMD,
    UNIT_VMEM,
    predecode_kernel,
)
from repro.workloads import create, workload_names

SCALE = 0.1
SEED = 7

#: Independent unit-routing expectation (paper Fig. 2): HSAIL has a
#: dedicated branch unit, GCN3 folds branches into the scalar unit.
def expected_unit(category, is_gcn3):
    return {
        InstrCategory.VALU: UNIT_SIMD,
        InstrCategory.SALU: UNIT_SCALAR,
        InstrCategory.SMEM: UNIT_SCALAR,
        InstrCategory.BRANCH: UNIT_SCALAR if is_gcn3 else UNIT_BRANCH,
        InstrCategory.MISC: UNIT_SCALAR if is_gcn3 else UNIT_BRANCH,
        InstrCategory.VMEM: UNIT_VMEM,
        InstrCategory.LDS: UNIT_LDS,
    }[category]


def iter_kernels(isa):
    for name in workload_names():
        workload = create(name, scale=SCALE, seed=SEED)
        for kname, dual in workload.kernels().items():
            yield f"{name}/{kname}", dual.for_isa(isa)


@pytest.mark.parametrize("isa", ["hsail", "gcn3"])
def test_every_descriptor_matches_its_raw_instruction(isa):
    checked = 0
    for label, kernel in iter_kernels(isa):
        descs = predecode_kernel(kernel)
        assert len(descs) == len(kernel.instrs), label
        is_gcn3 = isinstance(kernel, Gcn3Kernel)
        for pc, (desc, instr) in enumerate(zip(descs, kernel.instrs)):
            where = f"{label}@{pc} {instr.opcode}"
            assert desc.opcode == instr.opcode, where
            assert desc.category == instr.category, where
            assert desc.unit == expected_unit(instr.category, is_gcn3), where
            assert desc.is_memory == instr.category.is_memory, where
            if is_gcn3:
                reads = tuple(instr.vgpr_reads())
                writes = tuple(instr.vgpr_writes())
                long_valu = (instr.category == InstrCategory.VALU
                             and gcn3_isa.is_long_valu(instr.opcode))
                assert desc.size_bytes == instr.size_bytes, where
            else:
                reads = tuple(instr.vrf_slots_read())
                writes = tuple(instr.vrf_slots_written())
                long_valu = (instr.category == InstrCategory.VALU
                             and hsail_isa.is_long_valu(instr))
                assert desc.size_bytes == HSAIL_INSTR_BYTES, where
            assert desc.read_slots == reads, where
            assert desc.write_slots == writes, where
            assert desc.rw_slots == reads + writes, where
            assert desc.valu_mult == (2 if long_valu else 1), where
            if is_gcn3 and instr.opcode == "s_waitcnt":
                assert desc.is_waitcnt, where
                vm = instr.attrs.get("vmcnt")
                lgkm = instr.attrs.get("lgkmcnt")
                assert desc.wait_vm == (None if vm is None else int(vm)), where
                assert desc.wait_lgkm == (
                    None if lgkm is None else int(lgkm)), where
            else:
                assert not desc.is_waitcnt, where
                assert desc.wait_vm is None and desc.wait_lgkm is None, where
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("isa", ["hsail", "gcn3"])
def test_table_is_cached_per_kernel_object(isa):
    name = workload_names()[0]
    kernel = next(iter_kernels(isa))[1]
    assert predecode_kernel(kernel) is predecode_kernel(kernel), name
