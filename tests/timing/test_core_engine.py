"""Core engine odds and ends: funcsim limits, DualKernel API."""

import numpy as np
import pytest

from repro.common.errors import DeadlockError
from repro.core import Session, run_dispatch_functional
from repro.core.api import DualKernel
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess


class TestDualKernel:
    def test_for_isa(self, vec_add_dual):
        assert vec_add_dual.for_isa("hsail") is vec_add_dual.hsail
        assert vec_add_dual.for_isa("gcn3") is vec_add_dual.gcn3
        with pytest.raises(ValueError):
            vec_add_dual.for_isa("ptx")

    def test_name_and_ratio(self, vec_add_dual):
        assert vec_add_dual.name == "vec_add"
        assert vec_add_dual.expansion_ratio > 1.0

    def test_compile_is_deterministic(self):
        def build():
            kb = KernelBuilder("d", [("p", DType.U64)])
            tid = kb.wi_abs_id()
            kb.store(Segment.GLOBAL,
                     kb.kernarg("p") + kb.cvt(tid, DType.U64) * 4, tid * 3)
            return kb.finish()

        a = Session().compile(build())
        b = Session().compile(build())
        assert [repr(i) for i in a.gcn3.instrs] == [repr(i) for i in b.gcn3.instrs]
        assert [repr(i) for i in a.hsail.instrs] == [repr(i) for i in b.hsail.instrs]


class TestFuncsimLimits:
    def test_step_limit_catches_runaway_loops(self):
        kb = KernelBuilder("spin", [("p", DType.U64)])
        i = kb.var(DType.U32, 0)
        with kb.Loop() as loop:
            kb.assign(i, i + 1)
            loop.continue_if(kb.ge(i, 0))  # never exits (u32 always >= 0)
        kb.store(Segment.GLOBAL, kb.kernarg("p"), i)
        dual = Session().compile(kb.finish())
        proc = GpuProcess("gcn3")
        out = proc.alloc_buffer(64)
        proc.dispatch(dual.gcn3, grid=64, wg=64, kernargs=[out])
        with pytest.raises(DeadlockError):
            run_dispatch_functional(proc, proc.dispatches[0], step_limit=5000)

    def test_signal_decremented_on_completion(self, vec_add_dual):
        proc = GpuProcess("gcn3")
        a = proc.upload(np.zeros(64, dtype=np.float32))
        out = proc.alloc_buffer(4 * 64)
        d = proc.dispatch(vec_add_dual.gcn3, grid=64, wg=64,
                          kernargs=[a, a, out])
        assert d.signal.value == 1
        run_dispatch_functional(proc, d)
        d.signal.wait_zero()
