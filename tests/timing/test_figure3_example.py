"""The paper's Figure 3 worked example.

An if-else-if where each work-item stores 84 or 90 depending on two
conditions, with both paths populated.  Under HSAIL, the simulator's
reconvergence stack takes jumps that flush the instruction buffer; under
GCN3 the finalizer's serial, predicated layout executes the divergent
control flow with *no* taken branches (the ``s_cbranch_execz`` bypasses
are not taken because both paths have active lanes).
"""

import numpy as np
import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def build_figure3():
    """if (x < t1) out=84; else if (x < t2) out=90; else out=84."""
    kb = KernelBuilder(
        "fig3", [("x", DType.U64), ("out", DType.U64),
                 ("t1", DType.U32), ("t2", DType.U32)],
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    x = kb.load(Segment.GLOBAL, kb.kernarg("x") + off, DType.U32)
    result = kb.var(DType.U32, 0)
    with kb.If(kb.lt(x, kb.kernarg("t1"))) as outer:
        kb.assign(result, 84)
        with outer.Else():
            with kb.If(kb.lt(x, kb.kernarg("t2"))) as inner:
                kb.assign(result, 90)
                with inner.Else():
                    kb.assign(result, 84)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, result)
    return Session().compile(kb.finish())


@pytest.fixture(scope="module")
def dual():
    return build_figure3()


def run(dual, isa, x_values):
    n = len(x_values)
    proc = GpuProcess(isa)
    xa = proc.upload(np.asarray(x_values, dtype=np.uint32))
    out = proc.alloc_buffer(4 * n)
    proc.dispatch(dual.for_isa(isa), grid=n, wg=64,
                  kernargs=[xa, out, 10, 20])
    gpu = Gpu(small_config(1), proc)
    stats = gpu.run_all()[0]
    return proc.download(out, np.uint32, n), stats


def divergent_inputs():
    """All three paths populated within one wavefront."""
    x = np.zeros(64, dtype=np.uint32)
    x[0:20] = 5    # path A: x < t1 -> 84
    x[20:44] = 15  # path B: t1 <= x < t2 -> 90
    x[44:64] = 99  # path C: x >= t2 -> 84
    return x


class TestFunctionalAgreement:
    def test_both_isas_compute_the_example(self, dual):
        x = divergent_inputs()
        expected = np.where(x < 10, 84, np.where(x < 20, 90, 84)).astype(np.uint32)
        for isa in ("hsail", "gcn3"):
            out, _ = run(dual, isa, x)
            assert np.array_equal(out, expected), isa


class TestIbFlushes:
    def test_hsail_reconvergence_stack_flushes(self, dual):
        _, stats = run(dual, "hsail", divergent_inputs())
        # Figure 3b: the RS-managed SIMT execution takes several
        # simulator-initiated jumps, each flushing the IB.
        assert stats["ib_flushes"] >= 3

    def test_gcn3_predication_never_flushes(self, dual):
        _, stats = run(dual, "gcn3", divergent_inputs())
        # Figure 3c: serial layout + EXEC masking; with every path
        # populated, no bypass branch is taken and nothing flushes.
        assert stats["ib_flushes"] == 0

    def test_gcn3_bypass_taken_when_path_empty(self, dual):
        # All work-items take path A: the else-side bypass branches fire.
        x = np.full(64, 5, dtype=np.uint32)
        _, stats = run(dual, "gcn3", x)
        assert stats["ib_flushes"] >= 1

    def test_hsail_uniform_path_fewer_flushes(self, dual):
        uniform = np.full(64, 5, dtype=np.uint32)
        _, uniform_stats = run(dual, "hsail", uniform)
        _, divergent_stats = run(dual, "hsail", divergent_inputs())
        assert uniform_stats["ib_flushes"] < divergent_stats["ib_flushes"]


class TestInstructionCounts:
    def test_gcn3_executes_more_instructions(self, dual):
        x = divergent_inputs()
        _, hs = run(dual, "hsail", x)
        _, g3 = run(dual, "gcn3", x)
        assert g3.dynamic_instructions > hs.dynamic_instructions

    def test_gcn3_uses_scalar_pipeline(self, dual):
        from repro.common.categories import InstrCategory

        _, g3 = run(dual, "gcn3", divergent_inputs())
        assert g3.instructions_by_category[InstrCategory.SALU] > 0
        _, hs = run(dual, "hsail", divergent_inputs())
        assert hs.instructions_by_category.get(InstrCategory.SALU, 0) == 0
