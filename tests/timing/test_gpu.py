"""Top-level GPU timing-model tests."""

import numpy as np
import pytest

from repro.common.config import small_config, paper_config
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import DISPATCH_LATENCY, Gpu

from tests.conftest import build_branchy, build_vec_add


def run_kernel(dual, isa, n=128, num_cus=2, extra=(), arrays=None,
               out_bytes=4):
    proc = GpuProcess(isa)
    addrs = [proc.upload(a) for a in (arrays or [])]
    out = proc.alloc_buffer(out_bytes * n)
    proc.dispatch(dual.for_isa(isa), grid=n, wg=64,
                  kernargs=addrs + [out] + list(extra))
    gpu = Gpu(small_config(num_cus), proc)
    stats = gpu.run_all()[0]
    return proc, out, stats


class TestBasicExecution:
    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_vec_add_correct_through_timing_model(self, vec_add_dual, isa):
        n = 128
        rng = np.random.default_rng(3)
        a = rng.random(n, dtype=np.float32)
        b = rng.random(n, dtype=np.float32)
        proc, out, stats = run_kernel(vec_add_dual, isa, n=n, arrays=[a, b])
        assert np.allclose(proc.download(out, np.float32, n), a + b)
        assert stats.cycles > DISPATCH_LATENCY
        assert stats.dynamic_instructions > 0

    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_branchy_correct(self, branchy_dual, isa):
        n = 128
        rng = np.random.default_rng(4)
        a = rng.integers(0, 100, n).astype(np.uint32)
        proc, out, stats = run_kernel(branchy_dual, isa, n=n, arrays=[a],
                                      extra=[50])
        expected = np.where(a < 50, a * 3, a + 100).astype(np.uint32)
        assert np.array_equal(proc.download(out, np.uint32, n), expected)

    def test_timing_matches_functional_results(self, branchy_dual):
        """Execute-at-issue must agree with the pure functional engine."""
        from repro.core import run_dispatch_functional

        n = 128
        rng = np.random.default_rng(5)
        a = rng.integers(0, 100, n).astype(np.uint32)

        proc_f = GpuProcess("gcn3")
        pa = proc_f.upload(a)
        out_f = proc_f.alloc_buffer(4 * n)
        proc_f.dispatch(branchy_dual.gcn3, grid=n, wg=64,
                        kernargs=[pa, out_f, 50])
        run_dispatch_functional(proc_f, proc_f.dispatches[0])

        proc_t, out_t, _ = run_kernel(branchy_dual, "gcn3", n=n, arrays=[a],
                                      extra=[50])
        assert np.array_equal(proc_f.download(out_f, np.uint32, n),
                              proc_t.download(out_t, np.uint32, n))


class TestStatistics:
    def test_cycles_monotonic_with_work(self, vec_add_dual):
        """Past the latency-bound regime, more work means more cycles.

        (Small grids are cold-start dominated: one wavefront serializes
        its I-cache misses, so 64 items can cost *more* than 1024 run in
        parallel -- the comparison must use saturating sizes.)
        """
        rng = np.random.default_rng(6)
        small_n, big_n = 1024, 8192
        results = {}
        for n in (small_n, big_n):
            a = rng.random(n, dtype=np.float32)
            b = rng.random(n, dtype=np.float32)
            _, _, stats = run_kernel(vec_add_dual, "gcn3", n=n, arrays=[a, b],
                                     num_cus=1)
            results[n] = stats.cycles
        assert results[big_n] > 2 * results[small_n]

    def test_simd_utilization_full_grid(self, vec_add_dual):
        a = np.zeros(128, dtype=np.float32)
        _, _, stats = run_kernel(vec_add_dual, "gcn3", n=128, arrays=[a, a])
        assert stats.simd_utilization.value == 1.0

    def test_simd_utilization_partial_tail(self, vec_add_dual):
        a = np.zeros(96, dtype=np.float32)
        _, _, stats = run_kernel(vec_add_dual, "gcn3", n=96, arrays=[a, a])
        # second wavefront has 32/64 lanes
        assert 0.7 < stats.simd_utilization.value < 1.0

    def test_workgroups_counted(self, vec_add_dual):
        a = np.zeros(256, dtype=np.float32)
        _, _, stats = run_kernel(vec_add_dual, "gcn3", n=256, arrays=[a, a])
        assert stats["workgroups_dispatched"] == 4  # 256 / wg 64

    def test_cache_stats_exported(self, vec_add_dual):
        a = np.zeros(128, dtype=np.float32)
        _, _, stats = run_kernel(vec_add_dual, "gcn3", n=128, arrays=[a, a])
        snap = stats.snapshot()
        assert any(k.startswith("l1d") for k in snap)
        assert snap.get("dram_accesses", 0) > 0


class TestMultiDispatch:
    def test_sequential_dispatches_accumulate(self, vec_add_dual):
        proc = GpuProcess("gcn3")
        n = 64
        a = proc.upload(np.ones(n, dtype=np.float32))
        out1 = proc.alloc_buffer(4 * n)
        out2 = proc.alloc_buffer(4 * n)
        proc.dispatch(vec_add_dual.gcn3, grid=n, wg=64, kernargs=[a, a, out1])
        proc.dispatch(vec_add_dual.gcn3, grid=n, wg=64, kernargs=[a, out1, out2])
        gpu = Gpu(small_config(1), proc)
        results = gpu.run_all()
        assert len(results) == 2
        assert np.allclose(proc.download(out2, np.float32, n), 3.0)
        # each dispatch's signal completed
        for d in proc.dispatches:
            d.signal.wait_zero()


class TestOccupancy:
    def test_register_demand_limits_residency(self):
        """A kernel demanding many registers caps wavefronts per CU."""
        kb = KernelBuilder("fat", [("p", DType.U64)])
        p = kb.kernarg("p")
        vals = [kb.load(Segment.GLOBAL, p + (4 * i), DType.F32)
                for i in range(100)]
        acc = kb.var(DType.F32, 0.0)
        for v in vals:
            kb.assign(acc, acc + v)
        tid = kb.wi_abs_id()
        kb.store(Segment.GLOBAL, p + kb.cvt(tid, DType.U64) * 4, acc)
        dual = Session().compile(kb.finish())

        # HSAIL wants >100 VRF slots per WF; a 2048-entry VRF then holds
        # at most ~20 wavefronts, below the 40 WF slots.
        assert dual.hsail.reg_slots_used * 21 > 2048

        proc = GpuProcess("hsail")
        data = proc.upload(np.ones(4096, dtype=np.float32))
        proc.dispatch(dual.hsail, grid=2048, wg=256, kernargs=[data])
        gpu = Gpu(small_config(1), proc)
        stats = gpu.run_all()[0]
        assert stats["workgroups_dispatched"] == 8  # all eventually ran


class TestBarriers:
    def test_barrier_synchronizes_workgroup(self):
        kb = KernelBuilder("bar", [("out", DType.U64)])
        lds = kb.group_alloc("tile", 512)
        t = kb.wi_id()
        kb.store(Segment.GROUP, lds + t * 4, t + 1)
        kb.barrier()
        # read a value written by another wavefront of the workgroup
        partner = t ^ 64
        v = kb.load(Segment.GROUP, lds + partner * 4, DType.U32)
        tid = kb.wi_abs_id()
        kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4, v)
        dual = Session().compile(kb.finish())

        for isa in ("hsail", "gcn3"):
            proc = GpuProcess(isa)
            out = proc.alloc_buffer(4 * 128)
            proc.dispatch(dual.for_isa(isa), grid=128, wg=128, kernargs=[out])
            gpu = Gpu(small_config(1), proc)
            stats = gpu.run_all()[0]
            got = proc.download(out, np.uint32, 128)
            expected = (np.arange(128) ^ 64) + 1
            assert np.array_equal(got, expected), isa
            assert stats["barriers"] >= 1
