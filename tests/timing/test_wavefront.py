"""TimingWavefront bookkeeping tests."""

import pytest

from repro.common.exec_types import DispatchContext
from repro.gcn3.isa import Gcn3Instr, Gcn3Kernel, SImm, SReg, VReg
from repro.gcn3.semantics import Gcn3WfState
from repro.timing.wavefront import TimingWavefront


def make_wf(num_instrs=8):
    instrs = [Gcn3Instr(opcode="v_mov_b32", dest=VReg(1), srcs=(SImm(0),))
              for _ in range(num_instrs - 1)]
    instrs.append(Gcn3Instr(opcode="s_endpgm"))
    kernel = Gcn3Kernel(
        name="t", instrs=instrs, sgprs_used=10, vgprs_used=4, params=[],
        kernarg_bytes=0, group_bytes=0, private_bytes=0, spill_bytes=0,
        scratch_bytes=0,
    )
    kernel.compute_layout()
    ctx = DispatchContext(grid_size=(64, 1, 1), wg_size=(64, 1, 1),
                          wg_id=(0, 0, 0), wf_index_in_wg=0)
    state = Gcn3WfState(kernel=kernel, ctx=ctx)
    return TimingWavefront(wf_id=0, simd_id=0, wg_key=(0, 0), state=state,
                           code_base=0x1000, ib_capacity=4)


class TestInstructionBuffer:
    def test_head_and_pop(self):
        wf = make_wf()
        wf.ib.append((0, 4))
        wf.ib.append((1, 4))
        assert wf.ib_head() == 0
        wf.ib_pop()
        assert wf.ib_head() == 1

    def test_flush_resets_fetch(self):
        wf = make_wf()
        wf.ib.append((0, 4))
        wf.fetch_index = 3
        wf.fetch_inflight = True
        epoch = wf.fetch_epoch
        wf.flush_ib(5)
        assert wf.ib == []
        assert wf.fetch_index == 5
        assert not wf.fetch_inflight
        assert wf.fetch_epoch == epoch + 1

    def test_wants_fetch_conditions(self):
        wf = make_wf()
        assert wf.wants_fetch()
        wf.fetch_inflight = True
        assert not wf.wants_fetch()
        wf.fetch_inflight = False
        wf.ib = [(i, 4) for i in range(4)]  # full
        assert not wf.wants_fetch()
        wf.ib = []
        wf.fetch_index = wf.num_instrs
        assert not wf.wants_fetch()

    def test_instruction_addresses_variable_length(self):
        wf = make_wf()
        # v_mov with inline 0 is 4 bytes each
        assert wf.instr_address(0) == 0x1000
        assert wf.instr_address(1) == 0x1004


class TestScoreboard:
    def test_time_based_release(self):
        wf = make_wf()
        wf.mark_busy([3, 4], until=10)
        assert not wf.slots_ready([3], now=5)
        assert wf.slots_ready_hint([3], now=5) == 10
        assert wf.slots_ready([3], now=10)

    def test_mem_busy_refcounting(self):
        wf = make_wf()
        wf.mark_mem_busy([7])
        wf.mark_mem_busy([7])
        assert not wf.slots_ready([7], now=100)
        wf.release_mem_busy([7])
        assert not wf.slots_ready([7], now=100)
        wf.release_mem_busy([7])
        assert wf.slots_ready([7], now=100)

    def test_mem_busy_has_no_time_hint(self):
        wf = make_wf()
        wf.mark_mem_busy([7])
        assert wf.slots_ready_hint([7], now=5) is None

    def test_unrelated_slots_unaffected(self):
        wf = make_wf()
        wf.mark_busy([3], until=100)
        assert wf.slots_ready([4], now=0)
