"""Fetch-stage and memory-coalescing behaviour tests."""

import numpy as np
import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def run_kernel(dual, isa, arrays, out_bytes, extra=(), n=64, config=None):
    proc = GpuProcess(isa)
    addrs = [proc.upload(a) for a in arrays]
    out = proc.alloc_buffer(out_bytes)
    proc.dispatch(dual.for_isa(isa), grid=n, wg=64,
                  kernargs=addrs + [out] + list(extra))
    gpu = Gpu(config or small_config(1), proc)
    stats = gpu.run_all()[0]
    return proc, out, stats


def build_gather(stride_name="stride"):
    """Loads with a runtime-controlled stride: stride 1 coalesces into a
    handful of cache lines; stride 16 touches one line per lane."""
    kb = KernelBuilder(
        "gather", [("src", DType.U64), ("out", DType.U64),
                   (stride_name, DType.U32)],
    )
    tid = kb.wi_abs_id()
    idx = tid * kb.kernarg(stride_name)
    v = kb.load(Segment.GLOBAL,
                kb.kernarg("src") + kb.cvt(idx, DType.U64) * 4, DType.U32)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4, v)
    return Session().compile(kb.finish())


class TestCoalescing:
    @pytest.fixture(scope="class")
    def dual(self):
        return build_gather()

    def test_unit_stride_touches_few_lines(self, dual):
        data = np.arange(64 * 16, dtype=np.uint32)
        _, _, stats = run_kernel(dual, "gcn3", [data], 4 * 64, extra=[1])
        # 64 lanes x 4B unit stride = 4 lines for the load
        assert stats["l1d0_misses"] <= 8  # plus the store's lines

    def test_strided_access_touches_many_lines(self, dual):
        data = np.arange(64 * 16, dtype=np.uint32)
        _, _, stats = run_kernel(dual, "gcn3", [data], 4 * 64, extra=[16])
        # each lane hits its own line: 64 load lines
        assert stats["l1d0_misses"] >= 64

    def test_strided_run_is_slower(self, dual):
        data = np.arange(64 * 16, dtype=np.uint32)
        _, _, unit = run_kernel(dual, "gcn3", [data], 4 * 64, extra=[1])
        _, _, strided = run_kernel(dual, "gcn3", [data], 4 * 64, extra=[16])
        assert strided.cycles > unit.cycles

    def test_both_isas_coalesce_alike(self, dual):
        """Application-data traffic is address-driven and identical across
        ISAs; GCN3 adds only its kernarg FLAT loads (the Table 2 accesses
        HSAIL services from simulator state)."""
        data = np.arange(64 * 16, dtype=np.uint32)
        lines = {}
        for isa in ("hsail", "gcn3"):
            _, _, stats = run_kernel(dual, isa, [data], 4 * 64, extra=[4])
            lines[isa] = stats["vmem_lines"]
        assert lines["hsail"] <= lines["gcn3"] <= lines["hsail"] + 4


class TestFetch:
    def test_fetch_requests_track_code_bytes(self):
        """Fetch traffic follows the encoded footprint of whichever ISA is
        larger — GCN3 for expansion-heavy kernels, but HSAIL's fixed 8
        bytes/instruction can exceed a densely-encoded GCN3 kernel (the
        sub-1.0 rows of Figure 8)."""
        dual = build_gather()
        data = np.arange(64 * 16, dtype=np.uint32)
        reqs, bytes_ = {}, {}
        for isa in ("hsail", "gcn3"):
            _, _, stats = run_kernel(dual, isa, [data], 4 * 64, extra=[1])
            reqs[isa] = stats["ifetch_requests"]
            bytes_[isa] = dual.for_isa(isa).code_bytes
        assert (reqs["gcn3"] > reqs["hsail"]) == (bytes_["gcn3"] > bytes_["hsail"])

    def test_taken_branch_refetches(self, branchy_dual):
        # All lanes below the threshold: the else path is empty, so the
        # GCN3 bypass branch is taken and flushes the IB.
        data = np.arange(64, dtype=np.uint32)
        _, _, stats = run_kernel(branchy_dual, "gcn3", [data], 4 * 64,
                                 extra=[100])
        flushes = stats["ib_flushes"]
        assert flushes >= 1
        # every flush forces at least one extra fetch request
        assert stats["ifetch_requests"] > flushes

    def test_balanced_divergence_never_flushes(self, branchy_dual):
        """Both paths populated: pure predication, zero flushes."""
        data = np.arange(64, dtype=np.uint32)
        _, _, stats = run_kernel(branchy_dual, "gcn3", [data], 4 * 64,
                                 extra=[32])
        assert stats["ib_flushes"] == 0
