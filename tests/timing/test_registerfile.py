"""VRF probe tests: bank conflicts, reuse distance, uniqueness."""

import numpy as np

from repro.common.stats import StatSet
from repro.timing.registerfile import VrfModel


def make_vrf():
    stats = StatSet()
    return VrfModel(num_banks=4, stats=stats), stats


class TestBankConflicts:
    def test_one_instruction_does_not_self_conflict(self):
        vrf, stats = make_vrf()
        vrf.note_access([0, 4, 8], now=0, duration=4)  # all bank 0
        vrf.flush()
        # the three operands occupy bank 0 but belong to one gather
        assert stats["vrf_bank_conflicts"] == 0

    def test_two_instructions_same_bank_conflict(self):
        vrf, stats = make_vrf()
        vrf.note_access([0], now=0, duration=4)
        vrf.note_access([4], now=0, duration=4)  # also bank 0
        vrf.flush()
        assert stats["vrf_bank_conflicts"] == 4  # overlap on all 4 cycles

    def test_different_banks_no_conflict(self):
        vrf, stats = make_vrf()
        vrf.note_access([0], now=0, duration=4)
        vrf.note_access([1], now=0, duration=4)
        vrf.flush()
        assert stats["vrf_bank_conflicts"] == 0

    def test_disjoint_windows_no_conflict(self):
        vrf, stats = make_vrf()
        vrf.note_access([0], now=0, duration=4)
        vrf.note_access([4], now=4, duration=4)
        vrf.flush()
        assert stats["vrf_bank_conflicts"] == 0

    def test_partial_overlap(self):
        vrf, stats = make_vrf()
        vrf.note_access([0], now=0, duration=4)
        vrf.note_access([4], now=2, duration=4)
        vrf.flush()
        assert stats["vrf_bank_conflicts"] == 2  # cycles 2 and 3

    def test_untraced_counts_eagerly_and_collect_never_double_counts(self):
        # Without per-cycle trace emission the model counts each conflict
        # the moment the overlapping gather is recorded (the per-cycle
        # totals are order-independent), so both overlap cycles are
        # visible immediately and collect()/flush() add nothing.
        vrf, stats = make_vrf()
        vrf.note_access([0], now=0, duration=2)
        vrf.note_access([4], now=0, duration=2)
        assert stats["vrf_bank_conflicts"] == 2
        vrf.collect(1)
        vrf.collect(10)
        vrf.flush()
        assert stats["vrf_bank_conflicts"] == 2

    def test_expired_windows_never_conflict_with_later_issues(self):
        vrf, stats = make_vrf()
        vrf.note_access([0], now=0, duration=2)   # bank 0, window [0, 2)
        vrf.note_access([4], now=5, duration=2)   # bank 0, but [0,2) ended
        assert stats["vrf_bank_conflicts"] == 0
        vrf.note_access([8], now=5, duration=2)   # overlaps the live window
        assert stats["vrf_bank_conflicts"] == 2
        # the untraced fast path keeps no per-cycle state at all
        assert vrf._pending == {}

    def test_empty_slots_noop(self):
        vrf, stats = make_vrf()
        vrf.note_access([], now=0, duration=4)
        vrf.flush()
        assert stats["vrf_bank_conflicts"] == 0


class TestReuseDistance:
    def test_distance_counted_between_accesses(self):
        vrf, stats = make_vrf()
        tracker = {}
        vrf.record_reuse(tracker, 1, [5])
        vrf.record_reuse(tracker, 4, [5])
        assert stats.reuse_distance.count == 1
        assert stats.reuse_distance.median == 3

    def test_first_access_records_nothing(self):
        vrf, stats = make_vrf()
        vrf.record_reuse({}, 1, [5, 6, 7])
        assert stats.reuse_distance.count == 0

    def test_per_slot_tracking(self):
        vrf, stats = make_vrf()
        tracker = {}
        vrf.record_reuse(tracker, 1, [1])
        vrf.record_reuse(tracker, 2, [2])
        vrf.record_reuse(tracker, 10, [1, 2])
        dist = stats.reuse_distance
        assert dist.count == 2
        assert dist.total == (10 - 1) + (10 - 2)


class TestUniqueness:
    def test_all_same_value(self):
        vrf, stats = make_vrf()
        regs = np.zeros((4, 64), dtype=np.uint32)
        regs[1][:] = 7
        vrf.probe_uniqueness(regs, [1], np.ones(64, dtype=bool), is_write=False)
        assert stats.read_uniqueness.value == 1 / 64

    def test_all_unique_values(self):
        vrf, stats = make_vrf()
        regs = np.zeros((4, 64), dtype=np.uint32)
        regs[1] = np.arange(64)
        vrf.probe_uniqueness(regs, [1], np.ones(64, dtype=bool), is_write=True)
        assert stats.write_uniqueness.value == 1.0

    def test_only_active_lanes_counted(self):
        vrf, stats = make_vrf()
        regs = np.zeros((4, 64), dtype=np.uint32)
        regs[1] = np.arange(64)
        mask = np.zeros(64, dtype=bool)
        mask[:8] = True
        vrf.probe_uniqueness(regs, [1], mask, is_write=False)
        assert stats.read_uniqueness.numerator == 8
        assert stats.read_uniqueness.denominator == 8

    def test_no_active_lanes_noop(self):
        vrf, stats = make_vrf()
        regs = np.zeros((4, 64), dtype=np.uint32)
        vrf.probe_uniqueness(regs, [1], np.zeros(64, dtype=bool), is_write=False)
        assert stats.read_uniqueness.denominator == 0
