"""Determinism suite for the accelerated cycle model.

The hot-path work (predecoded descriptors, ready-set scheduling, eager
VRF conflict accounting, masked-write fast paths) is only admissible if
it changes *nothing* observable: the same simulation must produce
bit-identical statistics run over run, and the traced engine — which
keeps the original per-cycle bookkeeping so it can emit events — must
agree with the untraced fast paths exactly.

``tests/harness/test_golden.py`` additionally pins the absolute values
against ``tests/golden/suite_small.json``; this file proves the
internal equivalences.
"""

import pytest

from repro.common.config import small_config
from repro.harness.runner import run_workload
from repro.obs.trace import TraceConfig

SCALE = 0.1
SEED = 7
CASES = [("bitonic", "hsail"), ("bitonic", "gcn3"),
         ("comd", "hsail"), ("comd", "gcn3")]


def _stats_payload(run):
    """Everything statistical about a run (wall clock and trace excluded)."""
    payload = run.to_payload()
    payload.pop("wall_seconds")
    payload.pop("trace", None)
    return payload


@pytest.mark.parametrize("workload,isa", CASES)
def test_run_twice_is_bit_identical(workload, isa):
    config = small_config(2)
    first = run_workload(workload, isa, scale=SCALE, config=config, seed=SEED)
    second = run_workload(workload, isa, scale=SCALE, config=config, seed=SEED)
    assert first.verified and second.verified
    assert _stats_payload(first) == _stats_payload(second)


@pytest.mark.parametrize("workload,isa", CASES)
def test_traced_and_untraced_statistics_agree(workload, isa):
    """The per-cycle (traced) and fast (untraced) paths are equivalent.

    Tracing every category forces the exact per-cycle VRF fold, the
    per-event cache notes, and per-issue emission — the original code
    paths — while the untraced run takes every fast path.  Statistics
    must not differ by a single count.
    """
    config = small_config(2)
    untraced = run_workload(workload, isa, scale=SCALE, config=config,
                            seed=SEED)
    traced = run_workload(workload, isa, scale=SCALE, config=config,
                          seed=SEED, trace=TraceConfig())
    assert untraced.verified and traced.verified
    assert traced.trace is not None and traced.trace.events
    assert _stats_payload(untraced) == _stats_payload(traced)
