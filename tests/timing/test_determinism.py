"""Determinism suite for the accelerated cycle model.

The hot-path work (predecoded descriptors, ready-set scheduling, eager
VRF conflict accounting, masked-write fast paths) is only admissible if
it changes *nothing* observable: the same simulation must produce
bit-identical statistics run over run, and the traced engine — which
keeps the original per-cycle bookkeeping so it can emit events — must
agree with the untraced fast paths exactly.

``tests/harness/test_golden.py`` additionally pins the absolute values
against ``tests/golden/suite_small.json``; this file proves the
internal equivalences.
"""

import pytest

from repro.common.config import small_config
from repro.harness.cache import TraceStore
from repro.harness.runner import run_workload
from repro.obs.trace import TraceConfig
from repro.timing.vector import resolve_engine

SCALE = 0.1
SEED = 7
CASES = [("bitonic", "hsail"), ("bitonic", "gcn3"),
         ("comd", "hsail"), ("comd", "gcn3")]

#: replay engines the run-twice / traced-vs-untraced equivalences must
#: also hold for (scalar = reference walk, vector = batch decode).
ENGINES = ["scalar", "vector"]


def _stats_payload(run):
    """Everything statistical about a run (wall clock and trace excluded)."""
    payload = run.to_payload()
    payload.pop("wall_seconds")
    payload.pop("trace", None)
    payload.pop("execution", None)
    return payload


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store = TraceStore(tmp_path_factory.mktemp("determinism-traces"))
    for workload, isa in CASES:
        run_workload(workload, isa, scale=SCALE, config=small_config(2),
                     seed=SEED, execution="capture", trace_store=store)
    return store


@pytest.mark.parametrize("workload,isa", CASES)
def test_run_twice_is_bit_identical(workload, isa):
    config = small_config(2)
    first = run_workload(workload, isa, scale=SCALE, config=config, seed=SEED)
    second = run_workload(workload, isa, scale=SCALE, config=config, seed=SEED)
    assert first.verified and second.verified
    assert _stats_payload(first) == _stats_payload(second)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("workload,isa", CASES)
def test_replay_twice_is_bit_identical(store, workload, isa, engine):
    """Run-twice determinism must survive trace replay under both
    engines — the vector path's decode memo in particular must not make
    the second replay of a trace differ from the first."""
    config = small_config(2).with_overrides({"engine": engine})
    first = run_workload(workload, isa, scale=SCALE, config=config,
                         seed=SEED, execution="replay", trace_store=store)
    second = run_workload(workload, isa, scale=SCALE, config=config,
                          seed=SEED, execution="replay", trace_store=store)
    assert first.execution == second.execution == "replay"
    assert _stats_payload(first) == _stats_payload(second)


@pytest.mark.parametrize("workload,isa", CASES)
def test_traced_and_untraced_statistics_agree(workload, isa):
    """The per-cycle (traced) and fast (untraced) paths are equivalent.

    Tracing every category forces the exact per-cycle VRF fold, the
    per-event cache notes, and per-issue emission — the original code
    paths — while the untraced run takes every fast path.  Statistics
    must not differ by a single count.
    """
    config = small_config(2)
    untraced = run_workload(workload, isa, scale=SCALE, config=config,
                            seed=SEED)
    traced = run_workload(workload, isa, scale=SCALE, config=config,
                          seed=SEED, trace=TraceConfig())
    assert untraced.verified and traced.verified
    assert traced.trace is not None and traced.trace.events
    assert _stats_payload(untraced) == _stats_payload(traced)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("workload,isa", CASES)
def test_traced_and_untraced_replay_agree(store, workload, isa, engine):
    """Traced-vs-untraced equivalence extended to replay mode.

    An event-traced replay always falls back to the scalar engine (its
    per-issue emission is exhaustive by construction; see
    ``resolve_engine``) — so this also proves the vector engine's
    untraced fast path agrees with the fully-instrumented walk of the
    same recorded stream.
    """
    config = small_config(2).with_overrides({"engine": engine})
    untraced = run_workload(workload, isa, scale=SCALE, config=config,
                            seed=SEED, execution="replay", trace_store=store)
    traced = run_workload(workload, isa, scale=SCALE, config=config,
                          seed=SEED, execution="replay", trace_store=store,
                          trace=TraceConfig())
    assert resolve_engine(engine, replay=True, traced=True) == "scalar"
    assert traced.trace is not None and traced.trace.events
    assert _stats_payload(untraced) == _stats_payload(traced)
