"""Shared fixtures: small kernels, processes, and run helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import small_config
from repro.core import Session, run_dispatch_functional
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def build_vec_add():
    """f32 c[i] = a[i] + b[i] — the simplest dual-ISA kernel."""
    kb = KernelBuilder(
        "vec_add",
        [("a", DType.U64), ("b", DType.U64), ("c", DType.U64)],
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    x = kb.load(Segment.GLOBAL, kb.kernarg("a") + off, DType.F32)
    y = kb.load(Segment.GLOBAL, kb.kernarg("b") + off, DType.F32)
    kb.store(Segment.GLOBAL, kb.kernarg("c") + off, x + y)
    return kb.finish()


def build_branchy():
    """Divergent if/else over a threshold — exercises masks and the RS."""
    kb = KernelBuilder(
        "branchy", [("a", DType.U64), ("out", DType.U64), ("thresh", DType.U32)]
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    x = kb.load(Segment.GLOBAL, kb.kernarg("a") + off, DType.U32)
    result = kb.var(DType.U32, 0)
    with kb.If(kb.lt(x, kb.kernarg("thresh"))) as br:
        kb.assign(result, x * 3)
        with br.Else():
            kb.assign(result, x + 100)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, result)
    return kb.finish()


@pytest.fixture(scope="session")
def vec_add_dual():
    return Session().compile(build_vec_add())


@pytest.fixture(scope="session")
def branchy_dual():
    return Session().compile(build_branchy())


def run_functional(dual, isa, arrays, out_count, out_dtype=np.float32,
                   grid=64, wg=64, extra_args=()):
    """Upload arrays, dispatch once, run functionally, return outputs."""
    proc = GpuProcess(isa)
    addrs = [proc.upload(a) for a in arrays]
    out = proc.alloc_buffer(max(4, np.dtype(out_dtype).itemsize * out_count))
    proc.dispatch(dual.for_isa(isa), grid=grid, wg=wg,
                  kernargs=addrs + [out] + list(extra_args))
    run_dispatch_functional(proc, proc.dispatches[0])
    return proc.download(out, out_dtype, out_count)


def run_timing(dual, isa, arrays, out_count, out_dtype=np.float32,
               grid=64, wg=64, extra_args=(), num_cus=2):
    """Same as run_functional but through the cycle model; returns
    (outputs, stats)."""
    proc = GpuProcess(isa)
    addrs = [proc.upload(a) for a in arrays]
    out = proc.alloc_buffer(max(4, np.dtype(out_dtype).itemsize * out_count))
    proc.dispatch(dual.for_isa(isa), grid=grid, wg=wg,
                  kernargs=addrs + [out] + list(extra_args))
    gpu = Gpu(small_config(num_cus), proc)
    stats = gpu.run_all()[0]
    return proc.download(out, out_dtype, out_count), stats
