"""Edge-case semantics tests for less-traveled GCN3 operations."""

import numpy as np
import pytest

from repro.common.exec_types import DispatchContext
from repro.gcn3.isa import Gcn3Instr, Gcn3Kernel, SImm, SReg, VReg
from repro.gcn3.semantics import Gcn3Executor, Gcn3WfState
from repro.runtime.memory import SimulatedMemory


def make_wf(instrs, vgprs=24, sgprs=24):
    kernel = Gcn3Kernel(
        name="t", instrs=list(instrs) + [Gcn3Instr(opcode="s_endpgm")],
        sgprs_used=sgprs, vgprs_used=vgprs, params=[], kernarg_bytes=0,
        group_bytes=0, private_bytes=0, spill_bytes=0, scratch_bytes=0,
    )
    kernel.compute_layout()
    ctx = DispatchContext(grid_size=(64, 1, 1), wg_size=(64, 1, 1),
                          wg_id=(0, 0, 0), wf_index_in_wg=0)
    return Gcn3WfState(kernel=kernel, ctx=ctx)


@pytest.fixture()
def ex():
    return Gcn3Executor(SimulatedMemory())


def run(ex, wf, n):
    for _ in range(n):
        ex.execute(wf)


class TestScalarOddities:
    def test_s_brev(self, ex):
        wf = make_wf([Gcn3Instr(opcode="s_brev_b32", dest=SReg(9),
                                srcs=(SImm(1),))])
        run(ex, wf, 1)
        assert wf.sgpr[9] == 0x80000000

    def test_s_not_b32_sets_scc(self, ex):
        wf = make_wf([Gcn3Instr(opcode="s_not_b32", dest=SReg(9),
                                srcs=(SImm(0xFFFFFFFF),))])
        run(ex, wf, 1)
        assert wf.sgpr[9] == 0
        assert wf.scc == 0

    def test_s_ashr_preserves_sign(self, ex):
        wf = make_wf([
            Gcn3Instr(opcode="s_mov_b32", dest=SReg(9),
                      srcs=(SImm((-64) & 0xFFFFFFFF),)),
            Gcn3Instr(opcode="s_ashr_i32", dest=SReg(10),
                      srcs=(SReg(9), SImm(2))),
        ])
        run(ex, wf, 2)
        assert wf.sgpr[10] == ((-16) & 0xFFFFFFFF)

    def test_s_lshr_b64(self, ex):
        wf = make_wf([
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(10, count=2),
                      srcs=(SImm(48),)),
            Gcn3Instr(opcode="s_lshl_b64", dest=SReg(12, count=2),
                      srcs=(SReg(10, count=2), SImm(40))),
            Gcn3Instr(opcode="s_lshr_b64", dest=SReg(14, count=2),
                      srcs=(SReg(12, count=2), SImm(40))),
        ])
        run(ex, wf, 3)
        assert wf.read_s64(SReg(14, count=2)) == 48

    def test_or_saveexec(self, ex):
        wf = make_wf([
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(10, count=2),
                      srcs=(SImm(0xF0),)),
            Gcn3Instr(opcode="s_or_saveexec_b64", dest=SReg(12, count=2),
                      srcs=(SReg(10, count=2),)),
        ])
        wf.exec_mask = 0x0F
        run(ex, wf, 2)
        assert wf.read_s64(SReg(12, count=2)) == 0x0F
        assert wf.exec_mask == 0xFF


class TestVectorOddities:
    def test_subrev_swaps_operands(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_subrev_u32", dest=VReg(2),
                                srcs=(SImm(3), VReg(1)))])
        wf.vgpr[1][:] = 10
        run(ex, wf, 1)
        assert wf.vgpr[2][0] == 7  # src1 - src0

    def test_v_subb_consumes_borrow(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_subb_u32", dest=VReg(2),
                                srcs=(SImm(10), VReg(1)))])
        wf.vgpr[1][:] = 3
        wf.vcc = 0b1  # borrow into lane 0
        run(ex, wf, 1)
        assert wf.vgpr[2][0] == 6   # 10 - 3 - 1
        assert wf.vgpr[2][1] == 7

    def test_v_mad_u24_masks_inputs(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_mad_u32_u24", dest=VReg(2),
                                srcs=(VReg(1), SImm(2), SImm(5)))])
        wf.vgpr[1][:] = 0x0100_0003  # upper byte must be ignored
        run(ex, wf, 1)
        assert wf.vgpr[2][0] == 3 * 2 + 5

    def test_v_bfe(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_bfe_u32", dest=VReg(2),
                                srcs=(VReg(1), SImm(8), SImm(4)))])
        wf.vgpr[1][:] = 0x00000A00
        run(ex, wf, 1)
        assert wf.vgpr[2][0] == 0xA

    def test_min_max_i32_signed(self, ex):
        wf = make_wf([
            Gcn3Instr(opcode="v_min_i32", dest=VReg(2),
                      srcs=(SImm((-5) & 0xFFFFFFFFFFFFFFFF), VReg(1))),
            Gcn3Instr(opcode="v_max_i32", dest=VReg(3),
                      srcs=(SImm((-5) & 0xFFFFFFFFFFFFFFFF), VReg(1))),
        ])
        wf.vgpr[1][:] = 3
        run(ex, wf, 2)
        assert wf.vgpr[2].view(np.int32)[0] == -5
        assert wf.vgpr[3][0] == 3

    def test_cvt_f64_to_i32_truncates(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_cvt_i32_f64", dest=VReg(4),
                                srcs=(VReg(2, count=2),))])
        vals = np.full(64, -7.9, dtype=np.float64)
        wf.write_v64(VReg(2, count=2), vals.view(np.uint64),
                     np.ones(64, dtype=bool))
        run(ex, wf, 1)
        assert wf.vgpr[4].view(np.int32)[0] == -7

    def test_readfirstlane_empty_exec_uses_lane_zero(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_readfirstlane_b32", dest=SReg(9),
                                srcs=(VReg(1),))])
        wf.vgpr[1][0] = 42
        wf.exec_mask = 0
        run(ex, wf, 1)
        assert wf.sgpr[9] == 42

    def test_ashrrev_i64(self, ex):
        wf = make_wf([Gcn3Instr(opcode="v_ashrrev_i64", dest=VReg(4, count=2),
                                srcs=(SImm(8), VReg(2, count=2)))])
        vals = np.full(64, -4096, dtype=np.int64)
        wf.write_v64(VReg(2, count=2), vals.view(np.uint64),
                     np.ones(64, dtype=bool))
        run(ex, wf, 1)
        out = wf.read_v64(VReg(4, count=2)).view(np.int64)
        assert out[0] == -16

    def test_vcc_branch(self, ex):
        wf = make_wf([
            Gcn3Instr(opcode="s_cbranch_vccnz", attrs={"target": 2}),
            Gcn3Instr(opcode="s_nop", attrs={"simm": 0}),
        ])
        wf.vcc = 1
        result = ex.execute(wf)
        assert result.branch_taken and wf.pc == 2
