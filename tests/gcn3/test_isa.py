"""GCN3 instruction-model tests."""

import pytest

from repro.common.categories import InstrCategory
from repro.common.errors import EncodingError
from repro.gcn3.isa import (
    EXEC,
    MAX_SGPRS,
    MAX_VGPRS,
    OPCODES,
    Gcn3Instr,
    Gcn3Kernel,
    SImm,
    SReg,
    VCC,
    VReg,
    imm_is_inline,
)


class TestArchitecturalLimits:
    def test_register_budgets(self):
        # paper §V.B: 256 VGPRs and 102 SGPRs per wavefront
        assert MAX_VGPRS == 256
        assert MAX_SGPRS == 102


class TestCategories:
    @pytest.mark.parametrize("opcode,category", [
        ("v_add_u32", InstrCategory.VALU),
        ("v_fma_f64", InstrCategory.VALU),
        ("s_add_u32", InstrCategory.SALU),
        ("s_and_saveexec_b64", InstrCategory.SALU),
        ("s_load_dword", InstrCategory.SMEM),
        ("s_branch", InstrCategory.BRANCH),
        ("s_cbranch_execz", InstrCategory.BRANCH),
        ("s_waitcnt", InstrCategory.MISC),
        ("s_barrier", InstrCategory.MISC),
        ("s_endpgm", InstrCategory.MISC),
        ("s_nop", InstrCategory.MISC),
        ("flat_load_dword", InstrCategory.VMEM),
        ("scratch_store_dword", InstrCategory.VMEM),
        ("ds_read_b32", InstrCategory.LDS),
    ])
    def test_category(self, opcode, category):
        assert Gcn3Instr(opcode=opcode).category == category

    def test_unknown_opcode_rejected(self):
        with pytest.raises(EncodingError):
            Gcn3Instr(opcode="v_bogus_b32")


class TestSizes:
    @pytest.mark.parametrize("opcode,size", [
        ("s_mov_b32", 4), ("s_add_u32", 4), ("s_cmp_lt_u32", 4),
        ("s_branch", 4), ("s_waitcnt", 4),
        ("v_mov_b32", 4), ("v_add_u32", 4),
        ("v_fma_f32", 8), ("v_cmp_lt_u32", 8), ("v_cndmask_b32", 8),
        ("s_load_dword", 8), ("flat_load_dword", 8), ("ds_read_b32", 8),
        ("scratch_load_dword", 8),
    ])
    def test_base_sizes(self, opcode, size):
        assert Gcn3Instr(opcode=opcode).size_bytes == size

    def test_literal_adds_a_dword(self):
        small = Gcn3Instr(opcode="v_add_u32", dest=VReg(0),
                          srcs=(SImm(5), VReg(1)))
        big = Gcn3Instr(opcode="v_add_u32", dest=VReg(0),
                        srcs=(SImm(1000), VReg(1)))
        assert small.size_bytes == 4
        assert big.size_bytes == 8

    def test_inline_constant_ranges(self):
        assert imm_is_inline(SImm(0))
        assert imm_is_inline(SImm(64))
        assert not imm_is_inline(SImm(65))
        assert imm_is_inline(SImm((-16) & 0xFFFFFFFFFFFFFFFF))
        assert not imm_is_inline(SImm((-17) & 0xFFFFFFFFFFFFFFFF))

    def test_inline_float_constants(self):
        one_f32 = SImm(0x3F800000, float_kind="f32")
        assert imm_is_inline(one_f32)
        pi_f32 = SImm(0x40490FDB, float_kind="f32")
        assert not imm_is_inline(pi_f32)
        one_f64 = SImm(0x3FF0000000000000, float_kind="f64")
        assert imm_is_inline(one_f64)


class TestIntrospection:
    def test_vgpr_and_sgpr_reads(self):
        instr = Gcn3Instr(opcode="v_add_u32", dest=VReg(3),
                          srcs=(SReg(9), VReg(1, count=2)))
        assert instr.vgpr_reads() == [1, 2]
        assert instr.sgpr_reads() == [9]
        assert instr.vgpr_writes() == [3]
        assert instr.sgpr_writes() == []

    def test_special_regs_not_counted(self):
        instr = Gcn3Instr(opcode="s_mov_b64", dest=EXEC, srcs=(VCC,))
        assert instr.sgpr_reads() == []
        assert instr.sgpr_writes() == []

    def test_implicit_flags(self):
        assert OPCODES["v_add_u32"].writes_vcc
        assert OPCODES["v_addc_u32"].reads_vcc
        assert OPCODES["s_cmp_lt_u32"].writes_scc
        assert OPCODES["s_cselect_b32"].reads_scc
        assert OPCODES["s_and_saveexec_b64"].writes_exec
        assert OPCODES["v_div_scale_f64"].writes_vcc
        assert OPCODES["v_div_fmas_f64"].reads_vcc


class TestKernelLayout:
    def make_kernel(self):
        instrs = [
            Gcn3Instr(opcode="s_mov_b32", dest=SReg(9), srcs=(SImm(1000),)),  # 8B
            Gcn3Instr(opcode="v_mov_b32", dest=VReg(1), srcs=(SReg(9),)),     # 4B
            Gcn3Instr(opcode="s_endpgm"),                                     # 4B
        ]
        k = Gcn3Kernel(
            name="k", instrs=instrs, sgprs_used=10, vgprs_used=2,
            params=[], kernarg_bytes=0, group_bytes=0, private_bytes=0,
            spill_bytes=0, scratch_bytes=0,
        )
        k.compute_layout()
        return k

    def test_variable_length_layout(self):
        k = self.make_kernel()
        assert k.pc_of_index == [0, 8, 12]
        assert k.code_bytes == 16

    def test_index_of_pc(self):
        k = self.make_kernel()
        assert k.index_of_pc(8) == 1
        with pytest.raises(Exception):
            k.index_of_pc(6)

    def test_branch_attrs(self):
        b = Gcn3Instr(opcode="s_cbranch_scc1", attrs={"target": 5})
        assert b.is_branch and b.is_conditional and b.target == 5
        j = Gcn3Instr(opcode="s_branch", attrs={"target": 2})
        assert j.is_branch and not j.is_conditional
