"""Property-based encoder coverage: every opcode, random operands."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcn3.encoding import (
    _float_kind,
    _has_dest,
    _real_src_count,
    decode_kernel,
    encode_kernel,
    operand_widths,
)
from repro.gcn3.isa import OPCODES, Gcn3Instr, Gcn3Kernel, SImm, SReg, VReg

_SKIP = {"s_waitcnt", "s_nop"}  # attr-driven; covered by dedicated tests
_BRANCHES = {op for op in OPCODES if op.startswith(("s_branch", "s_cbranch"))}
_ENCODABLE = sorted(set(OPCODES) - _SKIP - _BRANCHES)


def _typed_imm(draw, opcode):
    """A well-typed immediate: hardware interprets literals by the
    instruction's operand type (f64 literals carry only the high dword),
    so the generator must match types the way a real finalizer does."""
    kind = _float_kind(opcode)
    if kind == "f32":
        pattern = draw(st.sampled_from(
            [0x3F800000, 0x40000000, 0x41200000, 0x80000000]))
        return SImm(pattern, float_kind="f32")
    if kind == "f64":
        hi = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
        return SImm(hi << 32, float_kind="f64")
    return SImm(draw(st.integers(min_value=0, max_value=2**20)))


def _make_operand(draw, fmt, opcode, position, width, is_dest):
    """A random operand legal for this opcode/format/position."""
    scalar_file = st.integers(min_value=0, max_value=100 - width)
    vector_file = st.integers(min_value=0, max_value=254 - width)
    if is_dest:
        if opcode == "v_readfirstlane_b32" or opcode.startswith(("s_", "v_cmp")):
            return SReg(draw(scalar_file) & ~(width - 1), count=width)
        return VReg(draw(vector_file) & ~(width - 1), count=width)
    # Sources.
    if fmt in ("SOP1", "SOP2", "SOPC", "SMEM"):
        if draw(st.booleans()):
            return SReg(draw(scalar_file) & ~(width - 1), count=width)
        return _typed_imm(draw, opcode)
    if fmt == "VOP2" and position == 1:
        return VReg(draw(vector_file) & ~(width - 1), count=width)
    if fmt in ("FLAT", "DS", "SCRATCH"):
        return VReg(draw(vector_file) & ~(width - 1), count=width)
    choice = draw(st.integers(0, 2))
    if choice == 0:
        return VReg(draw(vector_file) & ~(width - 1), count=width)
    if choice == 1 and not opcode.startswith("v_cndmask"):
        return SReg(draw(scalar_file) & ~(width - 1), count=width)
    if position == 2 and opcode == "v_cndmask_b32":
        return SReg(draw(scalar_file) & ~1, count=2)
    return _typed_imm(draw, opcode)


@st.composite
def random_instruction(draw):
    opcode = draw(st.sampled_from(_ENCODABLE))
    fmt = OPCODES[opcode].fmt
    dest_w, src_ws = operand_widths(opcode)
    nsrc = _real_src_count(opcode, [])
    dest = None
    if _has_dest(opcode):
        dest = _make_operand(draw, fmt, opcode, -1, max(1, dest_w), True)
    srcs = []
    for i in range(nsrc):
        width = src_ws[i] if i < len(src_ws) else 1
        if opcode == "v_cndmask_b32" and i == 2:
            srcs.append(SReg(draw(st.integers(0, 49)) * 2, count=2))
        else:
            srcs.append(_make_operand(draw, fmt, opcode, i, width, False))
    attrs = {}
    if fmt in ("SMEM", "DS", "SCRATCH"):
        attrs["offset"] = draw(st.integers(min_value=0, max_value=8191))
    return Gcn3Instr(opcode=opcode, dest=dest, srcs=tuple(srcs), attrs=attrs)


@given(st.lists(random_instruction(), min_size=1, max_size=12))
@settings(max_examples=120, deadline=None)
def test_random_streams_roundtrip(instrs):
    instrs = instrs + [Gcn3Instr(opcode="s_endpgm")]
    kernel = Gcn3Kernel(
        name="fuzz", instrs=instrs, sgprs_used=102, vgprs_used=256,
        params=[], kernarg_bytes=0, group_bytes=0, private_bytes=0,
        spill_bytes=0, scratch_bytes=0,
    )
    kernel.compute_layout()
    image = encode_kernel(kernel)
    assert len(image) == kernel.code_bytes
    decoded = decode_kernel(image)
    assert len(decoded) == len(instrs)
    for original, got in zip(instrs, decoded):
        assert got.opcode == original.opcode
        assert repr(got.dest) == repr(original.dest), (original, got)
        assert [repr(s) for s in got.srcs] == [repr(s) for s in original.srcs]
        if "offset" in original.attrs:
            assert got.attrs.get("offset") == original.attrs["offset"]
