"""GCN3 encoder/decoder tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import EncodingError
from repro.gcn3.encoding import (
    decode_kernel,
    decode_operand,
    encode_instruction,
    encode_kernel,
    encode_operand,
    operand_widths,
)
from repro.gcn3.isa import EXEC, Gcn3Instr, Gcn3Kernel, SImm, SReg, VCC, VReg


def make_kernel(instrs):
    k = Gcn3Kernel(
        name="t", instrs=instrs, sgprs_used=20, vgprs_used=20, params=[],
        kernarg_bytes=0, group_bytes=0, private_bytes=0, spill_bytes=0,
        scratch_bytes=0,
    )
    k.compute_layout()
    return k


class TestOperandCodes:
    def test_sgpr(self):
        assert encode_operand(SReg(7)) == (7, None)

    def test_vgpr(self):
        assert encode_operand(VReg(12)) == (268, None)

    def test_specials(self):
        assert encode_operand(VCC) == (106, None)
        assert encode_operand(EXEC) == (126, None)

    def test_inline_ints(self):
        assert encode_operand(SImm(0)) == (128, None)
        assert encode_operand(SImm(64)) == (192, None)
        assert encode_operand(SImm((-1) & 0xFFFFFFFFFFFFFFFF)) == (193, None)

    def test_literal(self):
        code, literal = encode_operand(SImm(0x12345678))
        assert code == 255 and literal == 0x12345678

    def test_f64_literal_keeps_high_dword(self):
        code, literal = encode_operand(
            SImm(0x4028000000000000, float_kind="f64"))  # 12.0, not inline
        assert code == 255
        assert literal == 0x40280000

    def test_out_of_range_registers_rejected(self):
        with pytest.raises(EncodingError):
            encode_operand(VReg(256))
        with pytest.raises(EncodingError):
            encode_operand(SReg(102))

    @given(st.integers(min_value=0, max_value=255))
    def test_vgpr_roundtrip(self, idx):
        code, lit = encode_operand(VReg(idx))
        assert decode_operand(code, lit, None, 1) == VReg(idx)

    @given(st.integers(min_value=-16, max_value=64))
    def test_inline_int_roundtrip(self, value):
        imm = SImm(value & 0xFFFFFFFFFFFFFFFF)
        code, lit = encode_operand(imm)
        assert lit is None
        decoded = decode_operand(code, lit, None, 1)
        assert decoded.pattern == imm.pattern


class TestInstructionRoundtrip:
    CASES = [
        Gcn3Instr(opcode="s_mov_b32", dest=SReg(9), srcs=(SImm(5),)),
        Gcn3Instr(opcode="s_add_u32", dest=SReg(10), srcs=(SReg(6), SImm(0x1000))),
        Gcn3Instr(opcode="s_cmp_lt_u32", srcs=(SReg(9), SReg(10))),
        Gcn3Instr(opcode="s_and_saveexec_b64", dest=SReg(10, count=2),
                  srcs=(SReg(12, count=2),)),
        Gcn3Instr(opcode="s_waitcnt", attrs={"vmcnt": 0, "lgkmcnt": 3}),
        Gcn3Instr(opcode="s_nop", attrs={"simm": 2}),
        Gcn3Instr(opcode="v_mov_b32", dest=VReg(1), srcs=(SReg(6),)),
        Gcn3Instr(opcode="v_add_u32", dest=VReg(2), srcs=(SReg(9), VReg(0))),
        Gcn3Instr(opcode="v_cmp_lt_u32", dest=SReg(10, count=2),
                  srcs=(SImm(3), VReg(4))),
        Gcn3Instr(opcode="v_cndmask_b32", dest=VReg(5),
                  srcs=(VReg(1), VReg(2), SReg(10, count=2))),
        Gcn3Instr(opcode="v_fma_f64", dest=VReg(6, count=2),
                  srcs=(VReg(8, count=2), VReg(10, count=2), VReg(12, count=2)),
                  attrs={"neg": (True, False, False)}),
        Gcn3Instr(opcode="s_load_dword", dest=SReg(9),
                  srcs=(SReg(4, count=2),), attrs={"offset": 4}),
        Gcn3Instr(opcode="flat_load_dwordx2", dest=VReg(2, count=2),
                  srcs=(VReg(4, count=2),)),
        Gcn3Instr(opcode="flat_store_dword", srcs=(VReg(4, count=2), VReg(6))),
        Gcn3Instr(opcode="ds_write_b32", srcs=(VReg(1), VReg(2)),
                  attrs={"offset": 16}),
        Gcn3Instr(opcode="scratch_load_dword", dest=VReg(3),
                  attrs={"offset": 8}),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: i.opcode)
    def test_roundtrip(self, instr):
        tail = Gcn3Instr(opcode="s_endpgm")
        kernel = make_kernel([instr, tail])
        decoded = decode_kernel(encode_kernel(kernel))
        got = decoded[0]
        assert got.opcode == instr.opcode
        assert repr(got.dest) == repr(instr.dest)
        assert [repr(s) for s in got.srcs] == [repr(s) for s in instr.srcs]
        if "offset" in instr.attrs:
            assert got.attrs["offset"] == instr.attrs["offset"]
        if "neg" in instr.attrs:
            assert got.attrs["neg"] == instr.attrs["neg"]
        if instr.opcode == "s_waitcnt":
            assert got.attrs.get("vmcnt") == instr.attrs.get("vmcnt")
            assert got.attrs.get("lgkmcnt") == instr.attrs.get("lgkmcnt")


class TestBranches:
    def test_forward_and_backward_targets(self):
        instrs = [
            Gcn3Instr(opcode="s_mov_b32", dest=SReg(9), srcs=(SImm(0),)),
            Gcn3Instr(opcode="s_cbranch_scc1", attrs={"target": 0}),
            Gcn3Instr(opcode="s_branch", attrs={"target": 4}),
            Gcn3Instr(opcode="s_nop", attrs={"simm": 0}),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        kernel = make_kernel(instrs)
        decoded = decode_kernel(encode_kernel(kernel))
        assert decoded[1].attrs["target"] == 0
        assert decoded[2].attrs["target"] == 4

    def test_unresolved_branch_rejected(self):
        kernel = make_kernel([
            Gcn3Instr(opcode="s_branch"),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        with pytest.raises(EncodingError):
            encode_kernel(kernel)


class TestSizes:
    def test_image_length_matches_layout(self):
        instrs = [
            Gcn3Instr(opcode="v_add_u32", dest=VReg(1), srcs=(SImm(500), VReg(0))),
            Gcn3Instr(opcode="v_fma_f32", dest=VReg(2),
                      srcs=(VReg(0), VReg(1), VReg(2))),
            Gcn3Instr(opcode="s_endpgm"),
        ]
        kernel = make_kernel(instrs)
        image = encode_kernel(kernel)
        assert len(image) == kernel.code_bytes == 8 + 8 + 4

    def test_every_workload_kernel_roundtrips(self):
        from repro.workloads import all_workloads

        wl = all_workloads(scale=0.1)[0]
        for dual in wl.kernels().values():
            k = dual.gcn3
            decoded = decode_kernel(encode_kernel(k))
            assert [d.opcode for d in decoded] == [i.opcode for i in k.instrs]


class TestOperandWidths:
    @pytest.mark.parametrize("opcode,dest,srcs", [
        ("s_mov_b64", 2, [2]),
        ("v_cmp_lt_f64", 2, [2, 2]),
        ("v_cmp_lt_u32", 2, [1, 1]),
        ("flat_load_dwordx2", 2, [2]),
        ("v_cndmask_b32", 1, [1, 1, 2]),
        ("v_lshlrev_b64", 2, [1, 2]),
        ("v_fma_f64", 2, [2, 2, 2]),
        ("s_load_dwordx4", 4, [2]),
    ])
    def test_widths(self, opcode, dest, srcs):
        d, s = operand_widths(opcode)
        assert d == dest
        assert s[:len(srcs)] == srcs
