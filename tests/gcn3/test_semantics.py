"""GCN3 functional-semantics tests: SALU, VALU, EXEC masking, memory."""

import numpy as np
import pytest

from repro.common.bits import pack_bfe_operand
from repro.common.exec_types import DispatchContext, MemKind
from repro.gcn3.isa import EXEC, Gcn3Instr, Gcn3Kernel, SImm, SReg, VCC, VReg
from repro.gcn3.semantics import Gcn3Executor, Gcn3WfState
from repro.runtime.memory import SimulatedMemory


def make_ctx(grid=64, wg=64):
    return DispatchContext(
        grid_size=(grid, 1, 1), wg_size=(wg, 1, 1), wg_id=(0, 0, 0),
        wf_index_in_wg=0,
    )


def make_wf(instrs, ctx=None, vgprs=24, sgprs=24):
    kernel = Gcn3Kernel(
        name="t", instrs=instrs, sgprs_used=sgprs, vgprs_used=vgprs,
        params=[], kernarg_bytes=0, group_bytes=0, private_bytes=0,
        spill_bytes=0, scratch_bytes=0,
    )
    kernel.compute_layout()
    return Gcn3WfState(kernel=kernel, ctx=ctx or make_ctx())


@pytest.fixture()
def executor():
    return Gcn3Executor(SimulatedMemory())


def run_one(executor, wf):
    return executor.execute(wf)


class TestSalu:
    def exec_salu(self, executor, *instrs, setup=None):
        wf = make_wf(list(instrs) + [Gcn3Instr(opcode="s_endpgm")])
        if setup:
            setup(wf)
        for _ in instrs:
            executor.execute(wf)
        return wf

    def test_s_mov_and_pairs(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_mov_b32", dest=SReg(9), srcs=(SImm(42),)),
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(10, count=2),
                      srcs=(SImm(0x1122334455),)),
        )
        assert wf.sgpr[9] == 42
        assert wf.read_s64(SReg(10, count=2)) == 0x1122334455

    def test_add_carry_chain(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_add_u32", dest=SReg(9),
                      srcs=(SImm(0xFFFFFFFF), SImm(1))),
            Gcn3Instr(opcode="s_addc_u32", dest=SReg(10),
                      srcs=(SImm(0), SImm(0))),
        )
        assert wf.sgpr[9] == 0
        assert wf.sgpr[10] == 1  # the carry propagated

    def test_sub_borrow_chain(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_sub_u32", dest=SReg(9),
                      srcs=(SImm(0), SImm(1))),
            Gcn3Instr(opcode="s_subb_u32", dest=SReg(10),
                      srcs=(SImm(5), SImm(0))),
        )
        assert wf.sgpr[9] == 0xFFFFFFFF
        assert wf.sgpr[10] == 4

    def test_s_mul_signed(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_mul_i32", dest=SReg(9),
                      srcs=(SImm((-3) & 0xFFFFFFFF), SImm(7))),
        )
        assert wf.sgpr[9] == (-21) & 0xFFFFFFFF

    def test_s_bfe_table1(self, executor):
        # The paper's Table 1 extraction: low 16 bits of the packed sizes.
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_mov_b32", dest=SReg(9),
                      srcs=(SImm(0x00400100),)),
            Gcn3Instr(opcode="s_bfe_u32", dest=SReg(10),
                      srcs=(SReg(9), SImm(pack_bfe_operand(0, 16)))),
        )
        assert wf.sgpr[10] == 0x100

    def test_s_cmp_sets_scc_and_cselect(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_cmp_lt_u32", srcs=(SImm(3), SImm(5))),
            Gcn3Instr(opcode="s_cselect_b32", dest=SReg(9),
                      srcs=(SImm(1), SImm(0))),
        )
        assert wf.scc == 1
        assert wf.sgpr[9] == 1

    def test_s_cmp_signed(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_cmp_gt_i32",
                      srcs=(SImm(1), SImm((-5) & 0xFFFFFFFF))),
        )
        assert wf.scc == 1

    def test_saveexec(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(10, count=2),
                      srcs=(SImm(0xF0),)),
            Gcn3Instr(opcode="s_and_saveexec_b64", dest=SReg(12, count=2),
                      srcs=(SReg(10, count=2),)),
        )
        original = (1 << 64) - 1
        assert wf.read_s64(SReg(12, count=2)) == original  # old exec saved
        assert wf.exec_mask == 0xF0
        assert wf.scc == 1

    def test_andn2_builds_else_mask(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(10, count=2),
                      srcs=(SImm(0xFF),)),
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(12, count=2),
                      srcs=(SImm(0x0F),)),
            Gcn3Instr(opcode="s_andn2_b64", dest=SReg(14, count=2),
                      srcs=(SReg(10, count=2), SReg(12, count=2))),
        )
        assert wf.read_s64(SReg(14, count=2)) == 0xF0

    def test_shifts_64(self, executor):
        wf = self.exec_salu(
            executor,
            Gcn3Instr(opcode="s_mov_b64", dest=SReg(10, count=2),
                      srcs=(SImm(6),)),
            Gcn3Instr(opcode="s_lshl_b64", dest=SReg(12, count=2),
                      srcs=(SReg(10, count=2), SImm(33))),
        )
        assert wf.read_s64(SReg(12, count=2)) == 6 << 33


class TestValu:
    def test_exec_masks_writes(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_mov_b32", dest=VReg(1), srcs=(SImm(9),)),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.exec_mask = 0b101
        executor.execute(wf)
        assert wf.vgpr[1][0] == 9
        assert wf.vgpr[1][1] == 0
        assert wf.vgpr[1][2] == 9

    def test_v_add_writes_vcc_carry(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_add_u32", dest=VReg(2),
                      srcs=(SImm(1), VReg(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1][:] = 0xFFFFFFFF
        wf.vgpr[1][0] = 5
        executor.execute(wf)
        assert wf.vgpr[2][0] == 6
        assert wf.vgpr[2][1] == 0
        assert (wf.vcc & 1) == 0      # lane 0: no carry
        assert (wf.vcc >> 1) & 1 == 1  # lane 1: carried

    def test_addc_consumes_vcc(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_addc_u32", dest=VReg(2),
                      srcs=(SImm(0), VReg(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vcc = 0b10
        executor.execute(wf)
        assert wf.vgpr[2][0] == 0
        assert wf.vgpr[2][1] == 1

    def test_v_cmp_writes_mask_sgpr(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_cmp_lt_u32", dest=SReg(10, count=2),
                      srcs=(SImm(32), VReg(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1] = np.arange(64, dtype=np.uint32)
        executor.execute(wf)
        mask = wf.read_s64(SReg(10, count=2))
        # 32 < lane for lanes 33..63
        assert mask == sum(1 << i for i in range(33, 64))

    def test_v_cmp_inactive_lanes_zero(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_cmp_eq_u32", dest=SReg(10, count=2),
                      srcs=(SImm(0), VReg(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.exec_mask = 0b11
        executor.execute(wf)
        assert wf.read_s64(SReg(10, count=2)) == 0b11

    def test_cndmask_selects_per_lane(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_cndmask_b32", dest=VReg(3),
                      srcs=(VReg(1), VReg(2), SReg(10, count=2))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1][:] = 100
        wf.vgpr[2][:] = 200
        wf.write_s64(SReg(10, count=2), 0b1)
        executor.execute(wf)
        assert wf.vgpr[3][0] == 200  # selected (mask bit set -> src1)
        assert wf.vgpr[3][1] == 100

    def test_mul_lo_hi(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_mul_lo_u32", dest=VReg(2),
                      srcs=(VReg(1), VReg(1))),
            Gcn3Instr(opcode="v_mul_hi_u32", dest=VReg(3),
                      srcs=(VReg(1), VReg(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1][:] = 0x10000
        executor.execute(wf)
        executor.execute(wf)
        assert wf.vgpr[2][0] == 0
        assert wf.vgpr[3][0] == 1

    def test_lshlrev_operand_order(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_lshlrev_b32", dest=VReg(2),
                      srcs=(SImm(4), VReg(1))),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1][:] = 3
        executor.execute(wf)
        assert wf.vgpr[2][0] == 48  # value shifted by src0

    def test_f64_fma_with_neg(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_fma_f64", dest=VReg(6, count=2),
                      srcs=(VReg(2, count=2), VReg(4, count=2),
                            SImm(0x3FF0000000000000, float_kind="f64")),
                      attrs={"neg": (True, False, False)}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        ones = np.ones(64, dtype=np.float64)
        wf.write_v64(VReg(2, count=2), (ones * 2).view(np.uint64),
                     np.ones(64, dtype=bool))
        wf.write_v64(VReg(4, count=2), (ones * 3).view(np.uint64),
                     np.ones(64, dtype=bool))
        executor.execute(wf)
        out = wf.read_v64(VReg(6, count=2)).view(np.float64)
        assert out[0] == -2.0 * 3.0 + 1.0

    def test_readfirstlane(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="v_readfirstlane_b32", dest=SReg(9),
                      srcs=(VReg(1),)),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1] = np.arange(64, dtype=np.uint32) + 5
        wf.exec_mask = 0b1000
        executor.execute(wf)
        assert wf.sgpr[9] == 8  # first active lane is 3


class TestControlFlow:
    def test_scc_branches(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="s_cmp_lt_u32", srcs=(SImm(1), SImm(2))),
            Gcn3Instr(opcode="s_cbranch_scc1", attrs={"target": 3}),
            Gcn3Instr(opcode="s_nop", attrs={"simm": 0}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        executor.execute(wf)
        result = executor.execute(wf)
        assert result.branch_taken
        assert wf.pc == 3

    def test_execz_branch_not_taken_with_lanes(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="s_cbranch_execz", attrs={"target": 2}),
            Gcn3Instr(opcode="s_nop", attrs={"simm": 0}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        result = executor.execute(wf)
        assert result.branch_taken is False
        assert wf.pc == 1

    def test_execz_branch_taken_when_empty(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="s_cbranch_execz", attrs={"target": 2}),
            Gcn3Instr(opcode="s_nop", attrs={"simm": 0}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.exec_mask = 0
        result = executor.execute(wf)
        assert result.branch_taken
        assert wf.pc == 2

    def test_waitcnt_reports_thresholds(self, executor):
        wf = make_wf([
            Gcn3Instr(opcode="s_waitcnt", attrs={"vmcnt": 0, "lgkmcnt": 2}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        result = executor.execute(wf)
        assert result.waitcnt == (0, 2)

    def test_endpgm_ends_wavefront(self, executor):
        wf = make_wf([Gcn3Instr(opcode="s_endpgm")])
        result = executor.execute(wf)
        assert result.ends_wavefront and wf.done

    def test_barrier_flag(self, executor):
        wf = make_wf([Gcn3Instr(opcode="s_barrier"),
                      Gcn3Instr(opcode="s_endpgm")])
        assert executor.execute(wf).is_barrier


class TestMemoryOps:
    def test_smem_load(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 64)
        mem.store_scalar(0x10010, 0xCAFE, 4, track=False)
        executor = Gcn3Executor(mem)
        wf = make_wf([
            Gcn3Instr(opcode="s_load_dword", dest=SReg(9),
                      srcs=(SReg(4, count=2),), attrs={"offset": 0x10}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.write_s64(SReg(4, count=2), 0x10000)
        result = executor.execute(wf)
        assert result.mem_kind == MemKind.SCALAR_LOAD
        assert wf.sgpr[9] == 0xCAFE

    def test_flat_roundtrip(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 4096)
        executor = Gcn3Executor(mem)
        wf = make_wf([
            Gcn3Instr(opcode="flat_store_dword", srcs=(VReg(2, count=2), VReg(1))),
            Gcn3Instr(opcode="flat_load_dword", dest=VReg(4),
                      srcs=(VReg(2, count=2),)),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        lanes = np.arange(64, dtype=np.uint64)
        wf.write_v64(VReg(2, count=2), 0x10000 + lanes * 4, np.ones(64, bool))
        wf.vgpr[1] = np.arange(64, dtype=np.uint32) * 7
        executor.execute(wf)
        executor.execute(wf)
        assert np.array_equal(wf.vgpr[4], wf.vgpr[1])

    def test_scratch_uses_private_frame(self):
        mem = SimulatedMemory()
        mem.map_range(0x20000, 64 * 16)
        executor = Gcn3Executor(mem)
        ctx = make_ctx()
        ctx.private_base = 0x20000
        ctx.private_stride = 16
        wf = make_wf([
            Gcn3Instr(opcode="scratch_store_dword", srcs=(VReg(1),),
                      attrs={"offset": 8}),
            Gcn3Instr(opcode="s_endpgm"),
        ], ctx)
        wf.vgpr[1] = np.arange(64, dtype=np.uint32)
        executor.execute(wf)
        assert mem.load_scalar(0x20000 + 8, 4) == 0
        assert mem.load_scalar(0x20000 + 16 + 8, 4) == 1

    def test_ds_ops_use_lds(self):
        lds = np.zeros(1024, dtype=np.uint8)
        executor = Gcn3Executor(SimulatedMemory(), lds)
        wf = make_wf([
            Gcn3Instr(opcode="ds_write_b32", srcs=(VReg(1), VReg(2)),
                      attrs={"offset": 0}),
            Gcn3Instr(opcode="ds_read_b32", dest=VReg(3), srcs=(VReg(1),),
                      attrs={"offset": 0}),
            Gcn3Instr(opcode="s_endpgm"),
        ])
        wf.vgpr[1] = np.arange(64, dtype=np.uint32) * 4
        wf.vgpr[2] = np.arange(64, dtype=np.uint32) + 1
        r = executor.execute(wf)
        assert r.mem_kind == MemKind.LDS_ACCESS
        executor.execute(wf)
        assert np.array_equal(wf.vgpr[3], wf.vgpr[2])


class TestAbiInitialization:
    def test_initial_registers(self):
        ctx = DispatchContext(
            grid_size=(512, 1, 1), wg_size=(128, 1, 1), wg_id=(2, 0, 0),
            wf_index_in_wg=1, kernarg_base=0x3000, aql_packet_addr=0x4000,
            private_base=0x5000, private_stride=32,
        )
        wf = make_wf([Gcn3Instr(opcode="s_endpgm")], ctx)
        assert wf.read_s64(SReg(0, count=2)) == 0x5000   # private base
        assert wf.sgpr[2] == 32                          # stride
        assert wf.read_s64(SReg(4, count=2)) == 0x4000   # AQL packet
        assert wf.read_s64(SReg(6, count=2)) == 0x3000   # kernarg
        assert wf.sgpr[8] == 2                           # workgroup id
        assert wf.vgpr[0][0] == 64                       # wf 1 lane 0
        assert wf.vgpr[0][5] == 69
