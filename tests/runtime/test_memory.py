"""Simulated memory and segment allocator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.runtime.memory import (
    HEAP_BASE,
    Segment,
    SegmentAllocator,
    SimulatedMemory,
)


class TestMapping:
    def test_access_below_heap_faults(self):
        mem = SimulatedMemory()
        with pytest.raises(MemoryError_):
            mem.load_scalar(0x100, 4)

    def test_unmapped_access_faults(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64)
        with pytest.raises(MemoryError_):
            mem.load_scalar(HEAP_BASE + 64, 4)

    def test_grows_on_demand(self):
        mem = SimulatedMemory(capacity=1 << 12)
        mem.map_range(HEAP_BASE, 1 << 20)
        mem.store_u32(HEAP_BASE + (1 << 19), 42)
        assert mem.load_u32(HEAP_BASE + (1 << 19)) == 42

    def test_map_below_base_rejected(self):
        with pytest.raises(MemoryError_):
            SimulatedMemory().map_range(0, 64)


class TestScalarAccess:
    def test_u32_u64_roundtrip(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64)
        mem.store_u32(HEAP_BASE, 0xDEADBEEF)
        mem.store_u64(HEAP_BASE + 8, 0x1122334455667788)
        assert mem.load_u32(HEAP_BASE) == 0xDEADBEEF
        assert mem.load_u64(HEAP_BASE + 8) == 0x1122334455667788

    def test_little_endian(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64)
        mem.store_u32(HEAP_BASE, 0x04030201)
        assert list(mem.read_block(HEAP_BASE, 4)) == [1, 2, 3, 4]

    def test_f64(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64)
        mem.write_array(HEAP_BASE, np.array([3.25], dtype=np.float64))
        assert mem.load_f64(HEAP_BASE) == 3.25


class TestVectorAccess:
    def test_gather_scatter_roundtrip(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 4096)
        addrs = np.uint64(HEAP_BASE) + np.arange(64, dtype=np.uint64) * 4
        values = np.arange(64, dtype=np.uint32) * 3
        mask = np.ones(64, dtype=bool)
        mem.scatter_u32(addrs, values, mask)
        assert np.array_equal(mem.gather_u32(addrs, mask), values)

    def test_masked_lanes_return_zero(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 4096)
        addrs = np.uint64(HEAP_BASE) + np.arange(64, dtype=np.uint64) * 4
        mask = np.zeros(64, dtype=bool)
        mask[7] = True
        mem.scatter_u32(addrs, np.full(64, 9, dtype=np.uint32), mask)
        out = mem.gather_u32(addrs, np.ones(64, dtype=bool))
        assert out[7] == 9
        assert out[6] == 0

    def test_unaligned_gather(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64)
        mem.write_block(HEAP_BASE, bytes(range(16)))
        addrs = np.full(64, HEAP_BASE + 1, dtype=np.uint64)
        mask = np.zeros(64, dtype=bool)
        mask[0] = True
        out = mem.gather_u32(addrs, mask)
        assert out[0] == 0x04030201

    def test_all_inactive_is_noop(self):
        mem = SimulatedMemory()
        addrs = np.zeros(64, dtype=np.uint64)  # would fault if accessed
        out = mem.gather_u32(addrs, np.zeros(64, dtype=bool))
        assert (out == 0).all()

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=64, max_size=64))
    @settings(max_examples=20, deadline=None)
    def test_gather_matches_numpy_reference(self, raw):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 4096)
        data = np.array(raw, dtype=np.uint32)
        mem.write_array(HEAP_BASE, data)
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 64, 64)
        addrs = np.uint64(HEAP_BASE) + idx.astype(np.uint64) * 4
        mask = np.ones(64, dtype=bool)
        assert np.array_equal(mem.gather_u32(addrs, mask), data[idx])


class TestFootprint:
    def test_device_access_tracked(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 4096)
        mem.load_scalar(HEAP_BASE, 4)
        assert mem.data_footprint_bytes == 64

    def test_host_access_untracked(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 4096)
        mem.write_array(HEAP_BASE, np.zeros(128, dtype=np.uint32))
        mem.read_block(HEAP_BASE, 64)
        mem.load_scalar(HEAP_BASE, 4, track=False)
        assert mem.data_footprint_bytes == 0

    def test_unique_lines_counted_once(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 4096)
        for _ in range(10):
            mem.load_scalar(HEAP_BASE + 4, 4)
        assert mem.data_footprint_bytes == 64

    def test_vector_footprint(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64 * 64)
        addrs = np.uint64(HEAP_BASE) + np.arange(64, dtype=np.uint64) * 64
        mem.gather_u32(addrs, np.ones(64, dtype=bool))
        assert mem.data_footprint_bytes == 64 * 64

    def test_reset(self):
        mem = SimulatedMemory()
        mem.map_range(HEAP_BASE, 64)
        mem.load_scalar(HEAP_BASE, 4)
        mem.reset_footprint()
        assert mem.data_footprint_bytes == 0


class TestAllocator:
    def test_alignment(self):
        alloc = SegmentAllocator(SimulatedMemory())
        a = alloc.alloc(10, align=256)
        assert a % 256 == 0

    def test_no_overlap(self):
        alloc = SegmentAllocator(SimulatedMemory())
        spans = []
        for i in range(20):
            addr = alloc.alloc(100 + i)
            spans.append((addr, addr + 100 + i))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryError_):
            SegmentAllocator(SimulatedMemory()).alloc(0)

    def test_per_process_reuses_private_frames(self):
        alloc = SegmentAllocator(SimulatedMemory(), policy="per_process")
        a = alloc.alloc(1024, Segment.PRIVATE, tag="frame:k")
        b = alloc.alloc(1024, Segment.PRIVATE, tag="frame:k")
        assert a == b

    def test_per_launch_always_fresh(self):
        alloc = SegmentAllocator(SimulatedMemory(), policy="per_launch")
        a = alloc.alloc(1024, Segment.PRIVATE, tag="frame:k")
        b = alloc.alloc(1024, Segment.PRIVATE, tag="frame:k")
        assert a != b

    def test_kernarg_never_reused(self):
        """Kernarg buffers are per-dispatch even per-process (the host
        overwrites them before each launch)."""
        alloc = SegmentAllocator(SimulatedMemory(), policy="per_process")
        a = alloc.alloc(64, Segment.KERNARG, tag="kernarg:k")
        b = alloc.alloc(64, Segment.KERNARG, tag="kernarg:k")
        assert a != b

    def test_bigger_request_reallocates(self):
        alloc = SegmentAllocator(SimulatedMemory(), policy="per_process")
        a = alloc.alloc(64, Segment.PRIVATE, tag="frame:k")
        b = alloc.alloc(128, Segment.PRIVATE, tag="frame:k")
        assert a != b

    def test_free_and_double_free(self):
        alloc = SegmentAllocator(SimulatedMemory())
        a = alloc.alloc(64)
        alloc.free(a)
        with pytest.raises(MemoryError_):
            alloc.free(a)

    def test_bad_policy_rejected(self):
        with pytest.raises(MemoryError_):
            SegmentAllocator(SimulatedMemory(), policy="whenever")

    def test_segment_ranges(self):
        alloc = SegmentAllocator(SimulatedMemory())
        g = alloc.alloc(64, Segment.GLOBAL)
        alloc.alloc(64, Segment.ARG)
        p = alloc.alloc(64, Segment.PRIVATE)
        ranges = alloc.segment_ranges({Segment.GLOBAL, Segment.PRIVATE})
        assert (g, g + 64) in ranges
        assert (p, p + 64) in ranges
        assert len(ranges) == 2

    def test_lookup(self):
        alloc = SegmentAllocator(SimulatedMemory())
        a = alloc.alloc(64, Segment.GLOBAL, tag="buf")
        record = alloc.lookup(a)
        assert record is not None and record.tag == "buf"
