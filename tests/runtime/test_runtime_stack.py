"""AQL packets, queues, signals, loader, and process tests."""

import numpy as np
import pytest

from repro.common.errors import RuntimeStackError
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.core import Session
from repro.runtime.loader import CodeObjectLoader
from repro.runtime.memory import Segment, SegmentAllocator, SimulatedMemory
from repro.runtime.packets import PACKET_BYTES, AqlDispatchPacket
from repro.runtime.process import GpuProcess
from repro.runtime.queues import AqlQueue
from repro.runtime.signals import Signal


def make_packet(**overrides):
    fields = dict(
        workgroup_size=(256, 1, 1),
        grid_size=(1024, 1, 1),
        private_segment_size=64,
        group_segment_size=512,
        kernel_object=0x20000,
        kernarg_address=0x30000,
        completion_signal=0x40000,
    )
    fields.update(overrides)
    return AqlDispatchPacket(**fields)


class TestPackets:
    def test_pack_is_64_bytes(self):
        assert len(make_packet().pack()) == PACKET_BYTES

    def test_roundtrip(self):
        p = make_packet()
        q = AqlDispatchPacket.unpack(p.pack())
        assert q == p

    def test_workgroup_size_dword_layout(self):
        """The GCN3 ABI s_loads the dword at offset 4 and bfe's the low 16
        bits (paper Table 1): it must contain wg_x | wg_y << 16."""
        raw = make_packet(workgroup_size=(192, 3, 1)).pack()
        dword = int.from_bytes(raw[4:8], "little")
        assert dword & 0xFFFF == 192
        assert (dword >> 16) & 0xFFFF == 3

    def test_grid_size_at_offset_12(self):
        raw = make_packet(grid_size=(5000, 1, 1)).pack()
        assert int.from_bytes(raw[12:16], "little") == 5000

    def test_memory_roundtrip(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 256)
        p = make_packet()
        p.write_to(mem, 0x10000)
        assert AqlDispatchPacket.read_from(mem, 0x10000) == p

    def test_invalid_sizes_rejected(self):
        with pytest.raises(RuntimeStackError):
            make_packet(workgroup_size=(0, 1, 1))
        with pytest.raises(RuntimeStackError):
            make_packet(grid_size=(0, 1, 1))

    def test_bad_unpack_length(self):
        with pytest.raises(RuntimeStackError):
            AqlDispatchPacket.unpack(b"\x00" * 10)


class TestQueues:
    def make_queue(self, capacity=4):
        mem = SimulatedMemory()
        alloc = SegmentAllocator(mem)
        base = alloc.alloc(64 * capacity)
        return AqlQueue(mem, base, capacity=capacity)

    def test_fifo_order(self):
        q = self.make_queue()
        for wg in (64, 128, 256):
            q.enqueue(make_packet(workgroup_size=(wg, 1, 1)))
        sizes = [q.dequeue().workgroup_size[0] for _ in range(3)]
        assert sizes == [64, 128, 256]

    def test_doorbell_tracks_last_index(self):
        q = self.make_queue()
        q.enqueue(make_packet())
        assert q.doorbell == 0
        q.enqueue(make_packet())
        assert q.doorbell == 1

    def test_overflow_rejected(self):
        q = self.make_queue(capacity=2)
        q.enqueue(make_packet())
        q.enqueue(make_packet())
        with pytest.raises(RuntimeStackError):
            q.enqueue(make_packet())

    def test_wraparound(self):
        q = self.make_queue(capacity=2)
        for i in range(5):
            q.enqueue(make_packet(grid_size=(i + 1, 1, 1)))
            assert q.dequeue().grid_size[0] == i + 1

    def test_empty_dequeue(self):
        assert self.make_queue().dequeue() is None

    def test_capacity_must_be_power_of_two(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 4096)
        with pytest.raises(RuntimeStackError):
            AqlQueue(mem, 0x10000, capacity=3)


class TestSignals:
    def test_decrement_to_zero(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 8)
        sig = Signal(mem, 0x10000, initial=1)
        assert sig.value == 1
        sig.decrement()
        sig.wait_zero()  # must not raise

    def test_wait_nonzero_raises(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 8)
        sig = Signal(mem, 0x10000, initial=2)
        sig.decrement()
        with pytest.raises(RuntimeStackError):
            sig.wait_zero()

    def test_callbacks(self):
        mem = SimulatedMemory()
        mem.map_range(0x10000, 8)
        sig = Signal(mem, 0x10000)
        seen = []
        sig.on_change(seen.append)
        sig.decrement()
        assert seen == [0]


def build_trivial():
    kb = KernelBuilder("triv", [("p", DType.U64)])
    tid = kb.wi_abs_id()
    kb.store(Segment.GLOBAL, kb.kernarg("p") + kb.cvt(tid, DType.U64) * 4, tid)
    return Session().compile(kb.finish())


class TestLoader:
    def test_gcn3_code_image_written(self):
        dual = build_trivial()
        mem = SimulatedMemory()
        loader = CodeObjectLoader(SegmentAllocator(mem))
        loaded = loader.load(dual.gcn3)
        assert loaded.code_bytes == dual.gcn3.code_bytes
        image = bytes(mem.read_block(loaded.code_base, loaded.code_bytes))
        from repro.gcn3.encoding import decode_kernel

        decoded = decode_kernel(image)
        assert [d.opcode for d in decoded] == [i.opcode for i in dual.gcn3.instrs]

    def test_hsail_footprint_is_8_bytes_per_instr(self):
        dual = build_trivial()
        loader = CodeObjectLoader(SegmentAllocator(SimulatedMemory()))
        loaded = loader.load(dual.hsail)
        assert loaded.code_bytes == 8 * len(dual.hsail.instrs)

    def test_kernels_loaded_once(self):
        dual = build_trivial()
        loader = CodeObjectLoader(SegmentAllocator(SimulatedMemory()))
        a = loader.load(dual.gcn3)
        b = loader.load(dual.gcn3)
        assert a is b


class TestProcess:
    def test_dispatch_stages_everything(self):
        dual = build_trivial()
        proc = GpuProcess("gcn3")
        buf = proc.alloc_buffer(4 * 64)
        d = proc.dispatch(dual.gcn3, grid=64, wg=64, kernargs=[buf])
        # kernarg staged
        assert proc.memory.load_scalar(d.kernarg_addr, 8, track=False) == buf
        # packet readable and consistent
        pkt = AqlDispatchPacket.read_from(proc.memory, d.packet_addr)
        assert pkt.grid_size == (64, 1, 1)
        assert pkt.kernarg_address == d.kernarg_addr
        assert proc.queue.size == 1

    def test_wrong_kernarg_count_rejected(self):
        dual = build_trivial()
        proc = GpuProcess("gcn3")
        with pytest.raises(RuntimeStackError):
            proc.dispatch(dual.gcn3, grid=64, wg=64, kernargs=[])

    def test_isa_sets_allocation_policy(self):
        assert GpuProcess("hsail").allocator.policy == "per_launch"
        assert GpuProcess("gcn3").allocator.policy == "per_process"
        with pytest.raises(RuntimeStackError):
            GpuProcess("ptx")

    def test_upload_download_roundtrip(self):
        proc = GpuProcess("gcn3")
        data = np.arange(100, dtype=np.float32)
        addr = proc.upload(data)
        assert np.array_equal(proc.download(addr, np.float32, 100), data)

    def test_wavefront_accounting(self):
        dual = build_trivial()
        proc = GpuProcess("gcn3")
        buf = proc.alloc_buffer(4 * 300)
        d = proc.dispatch(dual.gcn3, grid=300, wg=128, kernargs=[buf])
        assert d.num_workgroups == 3  # ceil(300/128)
        assert d.wavefronts_per_wg == 2
