"""Response wire types: golden payloads, lossless round trips, and the
same envelope discipline (version gate + unknown-field rejection) the
request side enforces."""

import json
from pathlib import Path

import pytest

from repro.core.requests import API_VERSION, RequestError
from repro.serve.protocol import (
    ErrorInfo,
    JobStatus,
    MetricsSnapshot,
    parse_response,
)

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden" / "requests"


def _sample_job() -> JobStatus:
    return JobStatus(
        job_id="j000007", request_kind="run", state="done",
        detail="arraybw/gcn3 scale=0.1 seed=7", client="tester",
        priority=2, submitted_at=1000.0, started_at=1000.5,
        finished_at=1001.0, queue_seconds=0.5, wall_seconds=0.5,
        progress=("[1/1] ok arraybw/gcn3 0.5s",), execution="replay",
        batch_id="b0001", batch_size=3, error=None,
        result={"cycles": 4698})


def _sample_metrics() -> MetricsSnapshot:
    return MetricsSnapshot(
        uptime_seconds=12.5, queue_depth=1, running=1, submitted=10,
        completed=7, failed=1, rate_limited=2, rejected=1, timeouts=1,
        captures=2, replays=6, executes=0, batches=3, max_batch=4,
        replay_share=0.75, trace_hits=6, trace_misses=2,
        wall_queued_seconds=0.9, wall_run_seconds=3.2,
        wall_suite_seconds=0.0, wall_sweep_seconds=0.0, draining=False)


class TestRoundTrips:
    def test_error_round_trip(self):
        info = ErrorInfo(status=429, message="slow down")
        assert ErrorInfo.from_payload(info.to_payload()) == info

    def test_job_round_trip(self):
        job = _sample_job()
        assert JobStatus.from_payload(job.to_payload()) == job

    def test_job_round_trip_minimal(self):
        job = JobStatus(job_id="j1", request_kind="suite", state="queued")
        again = JobStatus.from_payload(job.to_payload())
        assert again == job
        assert again.started_at is None and again.result is None

    def test_metrics_round_trip(self):
        metrics = _sample_metrics()
        assert MetricsSnapshot.from_payload(metrics.to_payload()) == metrics

    @pytest.mark.parametrize("build,cls", [
        (_sample_job, JobStatus),
        (_sample_metrics, MetricsSnapshot),
        (lambda: ErrorInfo(status=404, message="no"), ErrorInfo),
    ])
    def test_parse_response_dispatches(self, build, cls):
        obj = build()
        parsed = parse_response(obj.to_payload())
        assert isinstance(parsed, cls)
        assert parsed == obj


class TestGoldenPayloads:
    """The daemon's response schema is a contract, same as the request
    side: change it and these goldens must change with an API_VERSION
    bump."""

    def test_job_matches_golden(self):
        golden = json.loads((GOLDEN_DIR / "job_status.json").read_text())
        assert _sample_job().to_payload() == golden

    def test_metrics_matches_golden(self):
        golden = json.loads((GOLDEN_DIR / "metrics.json").read_text())
        assert _sample_metrics().to_payload() == golden


class TestEnvelope:
    def test_version_gate(self):
        payload = _sample_job().to_payload()
        payload["api"] = "repro-api/9"
        with pytest.raises(RequestError, match="repro-api/1"):
            JobStatus.from_payload(payload)

    def test_unknown_field_rejected_with_suggestion(self):
        payload = _sample_job().to_payload()
        payload["stat"] = "done"
        with pytest.raises(RequestError, match="did you mean state"):
            JobStatus.from_payload(payload)

    def test_unknown_response_kind(self):
        with pytest.raises(RequestError, match="unknown response kind"):
            parse_response({"api": API_VERSION, "kind": "jobs"})

    def test_bad_job_state(self):
        with pytest.raises(RequestError, match="unknown job state"):
            JobStatus(job_id="j1", request_kind="run", state="paused")

    def test_finished_property(self):
        assert _sample_job().finished
        assert not JobStatus(job_id="j1", request_kind="run",
                             state="running").finished
