"""End-to-end daemon tests: a real ``repro serve`` subprocess on an
ephemeral port, driven over HTTP with :class:`DaemonClient`.  Asserts
the daemon path is bit-identical to in-process execution, that a burst
sharing one functional fingerprint shares one capture, and that
SIGTERM drains gracefully (in-flight finishes, new work gets 503,
clean exit)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.serve import DaemonClient, DaemonError

SCALE = 0.1
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _start_daemon(tmp_dir, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--trace-dir", str(tmp_dir / "traces"),
         "--cache-dir", str(tmp_dir / "cache"), *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, cwd=str(tmp_dir), text=True)
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            break
        if process.poll() is not None:
            raise RuntimeError(f"daemon died at startup: {line!r}")
    else:
        process.kill()
        raise RuntimeError("daemon never announced its port")
    port = int(line.rsplit(":", 1)[1])
    return process, port


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp_dir = tmp_path_factory.mktemp("serve")
    process, port = _start_daemon(tmp_dir)
    try:
        yield DaemonClient("127.0.0.1", port, client_id="pytest")
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()


def _run_request(l1d=None, seed=7, execution="auto"):
    config = small_config(2)
    if l1d is not None:
        config = config.with_overrides({"l1d.size_bytes": l1d})
    return Session(config).build_run_request(
        "arraybw", "gcn3", scale=SCALE, seed=seed, execution=execution)


def _stats(payload):
    cleaned = dict(payload)
    cleaned.pop("wall_seconds", None)
    cleaned.pop("execution", None)
    return cleaned


class TestDaemonExecution:
    def test_run_bit_identical_to_in_process(self, daemon):
        status = daemon.wait(daemon.submit(_run_request(seed=20)).job_id)
        assert status.state == "done", status.error
        direct = _run_request(seed=20, execution="execute").execute()
        assert _stats(status.result) == _stats(direct.to_payload())

    def test_burst_shares_one_capture(self, daemon):
        """The tentpole scenario over the wire: N timing-only variants
        of one functional group cost one capture, the rest replay."""
        before = daemon.metrics()
        jobs = [daemon.submit(_run_request(l1d=size, seed=21))
                for size in (8192, 16384, 32768, 65536)]
        statuses = [daemon.wait(job.job_id) for job in jobs]
        for status in statuses:
            assert status.state == "done", status.error
        executions = [status.execution for status in statuses]
        after = daemon.metrics()
        assert executions.count("capture") == 1
        assert executions.count("replay") == 3
        assert after.captures - before.captures == 1
        assert after.replays - before.replays == 3
        assert after.batches > before.batches

    def test_suite_over_http(self, daemon):
        request = Session(small_config(2)).build_suite_request(
            workloads=["arraybw"], scale=SCALE, use_cache=False)
        status = daemon.wait(daemon.submit(request).job_id)
        assert status.state == "done", status.error
        assert status.request_kind == "suite"
        assert len(status.result["runs"]) == 2       # both ISAs
        assert status.progress                       # streamed lines

    def test_metrics_shape(self, daemon):
        metrics = daemon.metrics()
        assert metrics.submitted >= 1
        assert metrics.uptime_seconds > 0
        assert not metrics.draining

    def test_jobs_listing(self, daemon):
        listed = daemon.jobs()
        assert listed
        assert all(job.job_id.startswith("j") for job in listed)


class TestDaemonErrors:
    def test_unknown_field_is_400_with_suggestion(self, daemon):
        body = json.dumps({"api": "repro-api/1", "kind": "run",
                           "workload": "arraybw", "isa": "gcn3",
                           "scal": 0.5})
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("POST", "/v1/run", body=body)
        assert excinfo.value.status == 400
        assert "did you mean scale" in str(excinfo.value)

    def test_version_gate_is_400(self, daemon):
        body = json.dumps({"api": "repro-api/2", "kind": "run",
                           "workload": "arraybw", "isa": "gcn3"})
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("POST", "/v1/run", body=body)
        assert excinfo.value.status == 400

    def test_kind_endpoint_mismatch_is_400(self, daemon):
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("POST", "/v1/suite", body=_run_request().to_json())
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, daemon):
        with pytest.raises(DaemonError) as excinfo:
            daemon.job("j424242")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, daemon):
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("GET", "/v2/run")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, daemon):
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("GET", "/v1/run")
        assert excinfo.value.status == 405


class TestHealthz:
    def test_healthz_ok(self, daemon):
        payload = daemon.healthz()
        assert payload["ok"] is True
        assert payload["draining"] is False
        assert payload["role"] == "scheduler"

    def test_healthz_is_get_only(self, daemon):
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("POST", "/v1/healthz")
        assert excinfo.value.status == 405


class TestTraceBlobRoutes:
    def test_round_trip_over_http(self, daemon):
        # The burst tests above captured at least one trace; fetch its
        # fingerprint straight off the daemon's store via a fresh run.
        status = daemon.wait(daemon.submit(_run_request(seed=50)).job_id)
        assert status.state == "done", status.error
        from repro.harness.cache import trace_fingerprint

        config = small_config(2)
        fp = trace_fingerprint(config, "arraybw", "gcn3", SCALE, 50)
        blob = daemon.get_trace(fp)
        assert blob is not None and blob.startswith(b"RPROTRC1")
        # Re-uploading the same (valid) blob is accepted.
        assert daemon.put_trace(fp, blob) is True

    def test_missing_trace_is_none(self, daemon):
        assert daemon.get_trace("0" * 16) is None

    def test_corrupt_blob_is_refused(self, daemon):
        assert daemon.put_trace("deadbeef", b"not a trace") is False

    def test_bad_fingerprint_is_400(self, daemon):
        with pytest.raises(DaemonError) as excinfo:
            daemon._call("GET", "/v1/traces/", raw=True)
        assert excinfo.value.status in (400, 404)


class TestDistRoutesWithoutCoordinator:
    def test_dist_routes_404_on_plain_daemon(self, daemon):
        for method, path in [("POST", "/v1/dist/lease"),
                             ("POST", "/v1/dist/renew"),
                             ("POST", "/v1/dist/report"),
                             ("GET", "/v1/dist/status")]:
            with pytest.raises(DaemonError) as excinfo:
                daemon._call(method, path, body="{}")
            assert excinfo.value.status == 404
            assert "not a sweep coordinator" in str(excinfo.value)


class TestRateLimitOverHttp:
    def test_429_with_retry_after(self, tmp_path):
        process, port = _start_daemon(tmp_path, "--rate-limit", "0.1",
                                      "--rate-burst", "2")
        # max_retries=0: this test asserts the raw 429, not the
        # client-side backoff (tests/serve/test_client.py covers that).
        client = DaemonClient("127.0.0.1", port, client_id="ratelimited",
                              max_retries=0)
        try:
            client.submit(_run_request(seed=30))
            client.submit(_run_request(seed=31))
            with pytest.raises(DaemonError) as excinfo:
                client.submit(_run_request(seed=32))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_clean(self, tmp_path):
        process, port = _start_daemon(tmp_path)
        client = DaemonClient("127.0.0.1", port, client_id="drainer")
        jobs = [client.submit(_run_request(l1d=size, seed=40))
                for size in (8192, 16384)]
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=120) == 0
        # In-flight work finished before exit: the traces directory has
        # the captured group's trace on disk.
        traces = list((tmp_path / "traces").glob("*.trace"))
        assert traces, "accepted work was dropped on SIGTERM"
        assert len(jobs) == 2

    def test_shutdown_endpoint_drains(self, tmp_path):
        process, port = _start_daemon(tmp_path)
        client = DaemonClient("127.0.0.1", port, client_id="stopper")
        status = daemon_status = client.submit(_run_request(seed=41))
        client.shutdown()
        assert process.wait(timeout=120) == 0
        assert daemon_status.job_id == status.job_id
