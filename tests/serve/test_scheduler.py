"""Scheduler coverage: the batching proof (M queued cells over K
functional groups cost exactly K captures), per-client token-bucket
rate limiting, job timeouts through the pool, priority ordering, and
the SIGTERM drain protocol.  Everything here drives the synchronous
core — no sockets, no worker thread unless the test starts one."""

import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.core.requests import RunRequest
from repro.serve import (
    Draining,
    QueueFull,
    RateLimited,
    Scheduler,
    TokenBucket,
    UnknownJob,
)

SCALE = 0.1


def _run_request(workload="arraybw", isa="gcn3", *, l1d=None, seed=7,
                 execution="auto", trace_dir=None, scale=SCALE):
    config = small_config(2)
    if l1d is not None:
        config = config.with_overrides({"l1d.size_bytes": l1d})
    return Session(config).build_run_request(
        workload, isa, scale=scale, seed=seed, execution=execution,
        trace_dir=trace_dir)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_starve(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()         # burst exhausted
        clock.advance(1.0)
        assert bucket.try_take()             # refilled at 1/s
        assert not bucket.try_take()

    def test_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.retry_after() == pytest.approx(0.5)


class TestBatching:
    """The tentpole invariant: M queued cells spanning K functional
    groups execute exactly K captures; everything else replays."""

    def test_m_cells_k_groups_k_captures(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        sched = Scheduler(trace_dir=trace_dir)
        # 6 cells, 2 functional groups (one per ISA — the l1d size is
        # timing-only so it does NOT split a group).
        jobs = []
        for isa in ("gcn3", "hsail"):
            for l1d in (8192, 16384, 32768):
                jobs.append(sched.submit(_run_request(isa=isa, l1d=l1d)))
        ran = sched.run_until_idle()
        assert ran == 6
        metrics = sched.metrics()
        assert metrics.captures == 2          # exactly K
        assert metrics.replays == 4           # everything else
        assert metrics.executes == 0
        assert metrics.max_batch == 3
        for job in jobs:
            assert job.state == "done"
            assert job.batch_size == 3
        # First cell of each group captured, the rest replayed.
        by_group = {}
        for job in jobs:
            by_group.setdefault(job.request.isa, []).append(job.execution)
        for executions in by_group.values():
            assert executions == ["capture", "replay", "replay"]

    def test_batch_stats_bit_identical_to_direct_execution(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "traces"))
        jobs = [sched.submit(_run_request(l1d=size))
                for size in (8192, 16384, 32768)]
        sched.run_until_idle()
        for job, size in zip(jobs, (8192, 16384, 32768)):
            direct = _run_request(l1d=size, execution="execute").execute()
            expected = direct.to_payload()
            got = dict(job.result)
            for noise in ("wall_seconds", "execution"):
                got.pop(noise, None)
                expected.pop(noise, None)
            assert got == expected, f"l1d={size} drifted"

    def test_execute_mode_cells_never_batch(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "traces"))
        a = sched.submit(_run_request(execution="execute"))
        b = sched.submit(_run_request(execution="execute"))
        assert sched.run_pending() == 1        # no grouping
        assert a.batch_size == 1
        metrics = sched.metrics()
        assert metrics.executes == 1 and metrics.captures == 0
        sched.run_until_idle()
        assert b.state == "done" and b.execution == "execute"

    def test_different_seeds_split_groups(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "traces"))
        sched.submit(_run_request(seed=1))
        sched.submit(_run_request(seed=2))
        sched.run_until_idle()
        metrics = sched.metrics()
        assert metrics.captures == 2 and metrics.replays == 0

    def test_priority_orders_between_groups(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "traces"))
        low = sched.submit(_run_request(seed=1), priority=0)
        high = sched.submit(_run_request(seed=2), priority=5)
        assert sched.run_pending() == 1
        assert high.state == "done" and low.state == "queued"

    def test_daemon_trace_dir_pinned_onto_requests(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        sched = Scheduler(trace_dir=trace_dir)
        job = sched.submit(_run_request())
        assert job.request.trace_dir == trace_dir
        explicit = str(tmp_path / "mine")
        job2 = sched.submit(_run_request(trace_dir=explicit))
        assert job2.request.trace_dir == explicit   # client wins


class TestRateLimit:
    def test_429_after_burst(self, tmp_path):
        clock = FakeClock()
        sched = Scheduler(trace_dir=str(tmp_path / "t"), rate_limit=1.0,
                          rate_burst=2.0, clock=clock)
        sched.submit(_run_request(), client="alice")
        sched.submit(_run_request(), client="alice")
        with pytest.raises(RateLimited) as excinfo:
            sched.submit(_run_request(), client="alice")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after > 0
        assert sched.metrics().rate_limited == 1

    def test_buckets_are_per_client(self, tmp_path):
        clock = FakeClock()
        sched = Scheduler(trace_dir=str(tmp_path / "t"), rate_limit=1.0,
                          rate_burst=1.0, clock=clock)
        sched.submit(_run_request(), client="alice")
        sched.submit(_run_request(), client="bob")   # separate bucket
        with pytest.raises(RateLimited):
            sched.submit(_run_request(), client="alice")

    def test_tokens_refill(self, tmp_path):
        clock = FakeClock()
        sched = Scheduler(trace_dir=str(tmp_path / "t"), rate_limit=1.0,
                          rate_burst=1.0, clock=clock)
        sched.submit(_run_request(), client="alice")
        with pytest.raises(RateLimited):
            sched.submit(_run_request(), client="alice")
        clock.advance(1.5)
        sched.submit(_run_request(), client="alice")  # no raise

    def test_queue_full_503(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "t"), max_queue=2)
        sched.submit(_run_request(seed=1))
        sched.submit(_run_request(seed=2))
        with pytest.raises(QueueFull) as excinfo:
            sched.submit(_run_request(seed=3))
        assert excinfo.value.status == 503
        assert sched.metrics().rejected == 1


class TestTimeout:
    def test_job_timeout_fails_job_via_pool(self, tmp_path):
        """An absurdly small pool timeout turns a real run into a
        failed job with the pool's timeout message — the daemon never
        wedges."""
        sched = Scheduler(trace_dir=str(tmp_path / "t"),
                          job_timeout=0.001)
        job = sched.submit(_run_request(execution="execute"))
        sched.run_until_idle()
        assert job.state == "failed"
        assert "timed out" in job.error
        metrics = sched.metrics()
        assert metrics.failed == 1 and metrics.timeouts == 1
        status = job.status()
        assert status.state == "failed" and "timed out" in status.error

    def test_failed_job_does_not_kill_scheduler(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "t"))
        bad = sched.submit(_run_request(workload="no-such-workload"))
        good = sched.submit(_run_request())
        sched.run_until_idle()
        assert bad.state == "failed" and bad.error
        assert good.state == "done"


class TestDrain:
    def test_drain_finishes_accepted_and_rejects_new(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "t"))
        jobs = [sched.submit(_run_request(l1d=size))
                for size in (8192, 16384)]
        assert sched.drain(wait=True, timeout=120.0)
        for job in jobs:
            assert job.state == "done"
        with pytest.raises(Draining) as excinfo:
            sched.submit(_run_request())
        assert excinfo.value.status == 503
        assert sched.metrics().draining

    def test_drain_with_worker_thread(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "t"))
        sched.start()
        jobs = [sched.submit(_run_request(l1d=size))
                for size in (8192, 16384, 32768)]
        assert sched.stop(timeout=120.0)
        for job in jobs:
            assert job.state == "done", job.error
        with pytest.raises(Draining):
            sched.submit(_run_request())


class TestJobLookup:
    def test_unknown_job_404(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "t"))
        with pytest.raises(UnknownJob) as excinfo:
            sched.get("j999999")
        assert excinfo.value.status == 404

    def test_status_snapshot_round_trips(self, tmp_path):
        from repro.serve.protocol import JobStatus

        sched = Scheduler(trace_dir=str(tmp_path / "t"))
        job = sched.submit(_run_request(), client="c", priority=3)
        sched.run_until_idle()
        status = job.status()
        assert JobStatus.from_payload(status.to_payload()) == status
        assert status.queue_seconds >= 0.0
        assert status.wall_seconds > 0.0

    def test_suite_request_through_scheduler(self, tmp_path):
        sched = Scheduler(trace_dir=str(tmp_path / "t"))
        request = Session(small_config(2)).build_suite_request(
            workloads=["arraybw"], scale=SCALE, use_cache=False)
        job = sched.submit(request)
        sched.run_until_idle()
        assert job.state == "done", job.error
        assert job.result["scale"] == SCALE
        assert job.progress                 # streamed per-cell lines
        assert sched.metrics().wall_suite_seconds > 0.0
