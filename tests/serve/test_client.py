"""DaemonClient retry policy, no sockets: 429s retried with bounded
exponential backoff honoring Retry-After, everything else raised."""

import pytest

from repro.serve.client import DaemonClient, DaemonError


class _NoJitter:
    def uniform(self, low, high):
        return 0.0


def _client(max_retries=3, backoff=0.25, jitter=None):
    sleeps = []
    client = DaemonClient("127.0.0.1", 1, max_retries=max_retries,
                          backoff=backoff, sleep=sleeps.append)
    client._jitter = jitter or _NoJitter()
    return client, sleeps


def _failing(client, statuses, retry_after=None):
    """Make the client's transport fail with each status in turn, then
    succeed; returns the call-count recorder."""
    calls = {"n": 0}

    def fake_call_once(method, path, body=None, headers=None, *,
                       raw=False):
        calls["n"] += 1
        if calls["n"] <= len(statuses):
            raise DaemonError(statuses[calls["n"] - 1], "synthetic",
                              retry_after=retry_after)
        return {"ok": True}

    client._call_once = fake_call_once
    return calls


class TestBackoff:
    def test_429_retried_with_exponential_backoff(self):
        client, sleeps = _client()
        calls = _failing(client, [429, 429])
        assert client._call("GET", "/v1/healthz") == {"ok": True}
        assert calls["n"] == 3
        assert sleeps == [0.25, 0.5]

    def test_retry_after_is_the_floor(self):
        client, sleeps = _client()
        _failing(client, [429], retry_after=2.0)
        client._call("GET", "/v1/healthz")
        assert sleeps == [2.0]

    def test_delay_is_capped(self):
        client, sleeps = _client(backoff=0.25)
        _failing(client, [429], retry_after=99.0)
        client._call("GET", "/v1/healthz")
        assert sleeps == [DaemonClient.BACKOFF_CAP]

    def test_jitter_is_bounded(self):
        import random

        client, sleeps = _client(jitter=random.Random(1234))
        _failing(client, [429])
        client._call("GET", "/v1/healthz")
        assert len(sleeps) == 1
        assert 0.25 <= sleeps[0] <= 0.25 + 0.125

    def test_max_retries_zero_raises_immediately(self):
        client, sleeps = _client(max_retries=0)
        calls = _failing(client, [429])
        with pytest.raises(DaemonError) as excinfo:
            client._call("GET", "/v1/healthz")
        assert excinfo.value.status == 429
        assert calls["n"] == 1
        assert sleeps == []

    def test_retries_exhausted_raises(self):
        client, sleeps = _client(max_retries=2)
        calls = _failing(client, [429] * 10)
        with pytest.raises(DaemonError) as excinfo:
            client._call("GET", "/v1/healthz")
        assert excinfo.value.status == 429
        assert calls["n"] == 3             # initial try + 2 retries
        assert len(sleeps) == 2

    def test_non_429_is_never_retried(self):
        client, sleeps = _client()
        calls = _failing(client, [503, 503])
        with pytest.raises(DaemonError) as excinfo:
            client._call("GET", "/v1/healthz")
        assert excinfo.value.status == 503
        assert calls["n"] == 1
        assert sleeps == []
