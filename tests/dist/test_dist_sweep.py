"""End-to-end distributed sweeps, in-process: the embedded inline
worker path is bit-identical to ``run_sweep``, chunked shards keep the
capture-once economics, resume replays the journal without work, and
the results JSON carries the distribution ledger."""

import json

from repro.common.config import small_config
from repro.core.requests import SweepRequest
from repro.dist import journal_digest, run_dist_sweep
from repro.explore.space import Axis
from repro.explore.sweep import run_sweep

AXES = (Axis("cu.vrf_banks", (2, 4)),)
SCALE = 0.1


def _request(tmp_path, name, **kw):
    spec = dict(axes=AXES, workloads=("spmv",), isas=("gcn3",),
                scale=SCALE, seed=7, config=small_config(2),
                use_disk_cache=False,
                sweeps_dir=str(tmp_path / name / "sweeps"),
                trace_dir=str(tmp_path / name / "traces"),
                verify_replay=False)
    spec.update(kw)
    return SweepRequest(**spec)


def _serial(tmp_path, name):
    return run_sweep(list(AXES), base=small_config(2), workloads=["spmv"],
                     isas=("gcn3",), scale=SCALE, seed=7,
                     use_disk_cache=False,
                     sweeps_dir=str(tmp_path / name / "sweeps"),
                     trace_dir=str(tmp_path / name / "traces"),
                     verify_replay=False)


class TestInlineDistSweep:
    def test_bit_identical_to_run_sweep(self, tmp_path):
        dist = run_dist_sweep(_request(tmp_path, "dist"))
        serial = _serial(tmp_path, "serial")
        assert (journal_digest(dist.journal_path)
                == journal_digest(serial.journal_path))
        assert len(dist.points) == 2
        # one shard, capture-once-replay-everywhere inside it.
        assert dist.shards == 1
        assert dist.captures == 1 and dist.replays == 1
        assert dist.workers["inline"].cells == 2
        assert dist.retries == dist.expiries == dist.steals == 0

    def test_chunked_shards_still_capture_once(self, tmp_path):
        dist = run_dist_sweep(_request(tmp_path, "chunked"),
                              max_shard_cells=1)
        # the chunks share a trace fingerprint; the second replays the
        # first chunk's capture out of the coordinator's store.
        assert dist.shards == 2
        assert dist.captures == 1 and dist.replays == 1

    def test_json_carries_dist_ledger(self, tmp_path):
        dist = run_dist_sweep(_request(tmp_path, "ledger"))
        payload = json.loads(dist.to_json())
        ledger = payload["dist"]
        assert ledger["shards"] == 1
        assert ledger["workers"]["inline"]["cells"] == 2
        assert ledger["steals"] == 0
        assert ledger["duplicate_reports"] == 0
        # the ordinary sweep payload is still all there.
        assert payload["sweep_id"] == dist.sweep_id
        assert len(payload["points"]) == 2

    def test_resume_replays_journal_without_new_work(self, tmp_path):
        first = run_dist_sweep(_request(tmp_path, "again"))
        resumed = run_dist_sweep(_request(tmp_path, "again", resume=True))
        assert len(resumed.points) == 2
        assert resumed.shards == 0         # nothing left to distribute
        assert resumed.workers == {}
        assert (journal_digest(resumed.journal_path)
                == journal_digest(first.journal_path))
