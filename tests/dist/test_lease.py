"""Heartbeat lease table under a fake monotonic clock."""

import pytest

from repro.common.config import small_config
from repro.core.requests import SweepRequest
from repro.dist import LeaseTable, ShardState, plan_shards
from repro.explore.space import Axis


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _shard(cells=2):
    request = SweepRequest(axes=(Axis("cu.vrf_banks",
                                      tuple(2 ** i for i in range(1, cells + 1))),),
                           workloads=("spmv",), isas=("gcn3",), scale=0.1,
                           seed=7, config=small_config(2),
                           use_disk_cache=False, verify_replay=False)
    plan = plan_shards(request)
    assert len(plan.shards) == 1
    state = ShardState.from_request(plan.shards[0])
    assert len(state.remaining) == cells
    return state


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def table(clock):
    return LeaseTable(ttl=10.0, clock=clock)


class TestLeaseTable:
    def test_grant_ids_are_sequential(self, table):
        a = table.grant("w1", _shard())
        b = table.grant("w2", _shard())
        assert a.lease_id == "L00001"
        assert b.lease_id == "L00002"
        assert len(table) == 2
        assert table.get(a.lease_id) is a

    def test_renew_extends_the_deadline(self, table, clock):
        lease = table.grant("w1", _shard())
        clock.advance(8.0)
        renewed = table.renew(lease.lease_id)
        assert renewed is lease
        assert lease.renewals == 1
        clock.advance(8.0)                 # 16s after grant, 8 after renew
        assert table.expire() == []
        assert len(table) == 1

    def test_expiry_pops_overdue_leases(self, table, clock):
        a = table.grant("w1", _shard())
        clock.advance(5.0)
        b = table.grant("w2", _shard())
        clock.advance(6.0)                 # a is 11s old, b is 6s old
        expired = table.expire()
        assert expired == [a]
        assert len(table) == 1
        assert table.get(b.lease_id) is b

    def test_renew_of_expired_lease_is_none(self, table, clock):
        lease = table.grant("w1", _shard())
        clock.advance(11.0)
        table.expire()
        assert table.renew(lease.lease_id) is None

    def test_release(self, table):
        lease = table.grant("w1", _shard())
        assert table.release(lease.lease_id) is lease
        assert table.release(lease.lease_id) is None
        assert len(table) == 0

    def test_largest_picks_most_outstanding(self, table):
        table.grant("w1", _shard(2))
        big = table.grant("w2", _shard(3))
        assert table.largest() is big

    def test_largest_skips_single_cell_leases(self, table):
        small = table.grant("w1", _shard(2))
        small.shard.remaining.popitem()
        assert small.outstanding() == 1
        assert table.largest() is None     # splitting 1 cell buys nothing

    def test_positive_ttl_required(self, clock):
        with pytest.raises(ValueError, match="ttl"):
            LeaseTable(ttl=0.0, clock=clock)
