"""Chaos test: SIGKILL a subprocess worker mid-sweep and require the
fleet to finish with zero failed points, zero resimulation of journaled
cells, and a journal bit-identical to the serial path."""

import os
import signal
import time

from repro.common.config import small_config
from repro.core.requests import SweepRequest
from repro.dist import DistSweep, journal_digest
from repro.explore.space import Axis
from repro.explore.sweep import run_sweep

AXES = (Axis("cu.vrf_banks", (2, 4, 8)), Axis("l1d.hit_latency", (4, 8)))
WORKLOADS = ("spmv", "bitonic")
SCALE = 0.1


def _kill_a_lease_holder(sweep, deadline):
    """Wait until some local worker holds a lease and at least one cell
    has landed, then SIGKILL that worker.  Returns the victim id."""
    while time.monotonic() < deadline:
        status = sweep.coordinator.status()
        if status["cells_accepted"] >= 1 and status["active_leases"] >= 1:
            with sweep.coordinator._lock:
                holders = [lease.worker_id
                           for lease in sweep.coordinator._leases.active()
                           if lease.worker_id.startswith("local-")
                           and lease.outstanding() >= 1]
            for worker_id in holders:
                victim = sweep.processes[int(worker_id.split("-")[1])]
                if victim.poll() is None:
                    os.kill(victim.pid, signal.SIGKILL)
                    return worker_id
        time.sleep(0.05)
    return None


def test_sigkill_worker_mid_sweep(tmp_path):
    request = SweepRequest(
        axes=AXES, workloads=WORKLOADS, isas=("gcn3",), scale=SCALE,
        seed=7, config=small_config(2), use_disk_cache=False,
        sweeps_dir=str(tmp_path / "dist" / "sweeps"),
        trace_dir=str(tmp_path / "dist" / "traces"),
        verify_replay=False)
    sweep = DistSweep(request, workers=3, lease_ttl=1.5)
    sweep.start()
    try:
        victim = _kill_a_lease_holder(sweep, time.monotonic() + 120)
        results = sweep.wait(timeout=300)
    finally:
        sweep.stop()

    assert victim is not None, "no worker ever held a lease"

    # The dead worker's lease expired and its shard was re-queued.
    assert results.expiries >= 1
    assert results.retries >= 1
    assert results.workers[victim].expiries >= 1

    # The sweep still completed fully, with no failed cells.
    assert len(results.points) == 6
    for pr in results.points:
        assert pr.point.error is None
        assert len(pr.runs) == len(WORKLOADS)
        for run in pr.runs.values():
            assert run.error is None, run.error

    # Zero resimulation of journaled work: every cell was accepted
    # exactly once (duplicates from steal races are rejected before
    # they count).
    accepted = sweep.coordinator._accepted
    assert len(accepted) == 12
    assert max(accepted.values()) == 1
    assert sum(stats.cells for stats in results.workers.values()) == 12

    # And the survivors' merge is bit-identical to the serial engine.
    serial = run_sweep(list(AXES), base=small_config(2),
                       workloads=list(WORKLOADS), isas=("gcn3",),
                       scale=SCALE, seed=7, use_disk_cache=False,
                       sweeps_dir=str(tmp_path / "serial" / "sweeps"),
                       trace_dir=str(tmp_path / "serial" / "traces"),
                       verify_replay=False)
    assert (journal_digest(results.journal_path)
            == journal_digest(serial.journal_path))
