"""Coordinator protocol semantics under a fake clock: leases, expiry
requeue with journaled cells subtracted, work-stealing, first-wins
reports, and the poison-shard guard.  Reports are synthesized — no
simulation runs here."""

import pytest

from repro.common.config import small_config
from repro.common.errors import ReproError
from repro.common.stats import StatSet
from repro.core.requests import SweepRequest
from repro.dist import Coordinator
from repro.explore.space import Axis
from repro.harness.runner import WorkloadRun


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _coordinator(tmp_path, clock, *, banks=(2, 4), axes=None, **kw):
    if axes is None:
        axes = (Axis("cu.vrf_banks", banks),)
    request = SweepRequest(
        axes=axes, workloads=("spmv",), isas=("gcn3",), scale=0.1, seed=7,
        config=small_config(2), use_disk_cache=False,
        sweeps_dir=str(tmp_path / "sweeps"), execution="execute",
        verify_replay=False)
    return Coordinator(request, lease_ttl=10.0, clock=clock, **kw)


def _run_payload(cell_key, wall=0.01):
    point, rest = cell_key.split(":", 1)
    workload, isa = rest.split("/")
    return WorkloadRun(workload=workload, isa=isa, verified=True,
                       total=StatSet(), per_dispatch=[],
                       dispatch_kernel_names=[], data_footprint_bytes=0,
                       instr_footprint_bytes=0, static_instructions=0,
                       kernel_code_bytes={}, wall_seconds=wall).to_payload()


def _keys(grant):
    return [cell.key for cell in grant.shard.cells]


@pytest.fixture()
def clock():
    return FakeClock()


class TestLeaseReportCycle:
    def test_full_cycle(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        assert grant.state == "granted"
        assert grant.ttl == 10.0
        keys = _keys(grant)
        assert len(keys) == 2
        assert not co.done
        first = co.report("w1", grant.lease_id, keys[0],
                          _run_payload(keys[0]))
        assert first["accepted"] and not first["duplicate"]
        assert not first["done"]
        last = co.report("w1", grant.lease_id, keys[1],
                         _run_payload(keys[1]))
        assert last["done"] and co.done
        assert co.status()["active_leases"] == 0   # released on last cell
        results = co.finish()
        assert len(results.points) == 2
        assert results.workers["w1"].cells == 2
        assert results.workers["w1"].leases == 1
        assert results.retries == results.expiries == results.steals == 0
        assert (tmp_path / "sweeps").exists()

    def test_done_grant_after_completion(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        for key in _keys(grant):
            co.report("w1", grant.lease_id, key, _run_payload(key))
        assert co.lease("w2").state == "done"
        co.finish()

    def test_second_worker_waits_without_steal(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock, steal=False)
        co.lease("w1")
        grant = co.lease("w2")
        assert grant.state == "wait"
        assert 0 < grant.retry_after <= 2.5
        co.journal.close()


class TestExpiry:
    def test_expired_lease_requeues_minus_reported(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        keys = _keys(grant)
        co.report("w1", grant.lease_id, keys[0], _run_payload(keys[0]))
        clock.advance(11.0)
        regrant = co.lease("w2")
        assert regrant.state == "granted"
        # the journaled cell was subtracted: zero resimulation.
        assert _keys(regrant) == [keys[1]]
        status = co.status()
        assert status["expiries"] == 1 and status["retries"] == 1
        # the dead lease cannot renew; the victim learns to abandon it.
        assert co.renew("w1", grant.lease_id)["ok"] is False
        co.report("w2", regrant.lease_id, keys[1], _run_payload(keys[1]))
        results = co.finish()
        assert results.workers["w1"].expiries == 1
        assert len(results.points) == 2

    def test_late_report_from_dead_lease_is_accepted(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        keys = _keys(grant)
        clock.advance(11.0)
        # the work is deterministic and done; discarding it would only
        # buy a resimulation.
        late = co.report("w1", grant.lease_id, keys[0],
                         _run_payload(keys[0]))
        assert late["accepted"] and not late["duplicate"]
        regrant = co.lease("w2")
        assert _keys(regrant) == [keys[1]]
        co.report("w2", regrant.lease_id, keys[1], _run_payload(keys[1]))
        co.finish()

    def test_poison_shard_fails_after_max_attempts(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock, max_attempts=2)
        co.lease("w1")
        clock.advance(11.0)
        second = co.lease("w2")            # requeue (attempt 1) + regrant
        assert second.state == "granted"
        clock.advance(11.0)
        final = co.lease("w3")             # attempt 2 -> poisoned
        assert final.state == "done"
        results = co.finish()
        assert results.expiries == 2 and results.retries == 1
        assert len(results.points) == 2
        for pr in results.points:
            for run in pr.runs.values():
                assert run.error is not None
                assert "lease expiries" in run.error


class TestSteal:
    def test_steal_splits_largest_lease(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock, banks=(2, 4, 8, 16))
        victim = co.lease("w1")
        assert len(_keys(victim)) == 4
        stolen = co.lease("w2")
        assert stolen.state == "granted" and stolen.stolen
        stolen_keys = _keys(stolen)
        assert len(stolen_keys) == 2       # tail half
        assert set(stolen_keys).isdisjoint(_keys(victim)[:2])
        # the victim learns which cells left on its next heartbeat.
        reply = co.renew("w1", victim.lease_id)
        assert reply["ok"] is True
        assert sorted(reply["stolen"]) == sorted(stolen_keys)
        status = co.status()
        assert status["steals"] == 1
        assert status["outstanding_cells"] == 4
        for key in _keys(victim)[:2]:
            co.report("w1", victim.lease_id, key, _run_payload(key))
        for key in stolen_keys:
            co.report("w2", stolen.lease_id, key, _run_payload(key))
        results = co.finish()
        assert results.steals == 1
        assert results.workers["w2"].steals == 1
        assert results.workers["w1"].cells == 2
        assert results.workers["w2"].cells == 2

    def test_stolen_cell_reported_by_victim_is_duplicate_safe(
            self, tmp_path, clock):
        """A victim that raced past its renewal keeps simulating stolen
        cells; whoever reports first wins, the loser is counted."""
        co = _coordinator(tmp_path, clock, banks=(2, 4, 8, 16))
        victim = co.lease("w1")
        stolen = co.lease("w2")
        contested = _keys(stolen)[0]
        first = co.report("w1", victim.lease_id, contested,
                          _run_payload(contested))
        assert first["accepted"]
        second = co.report("w2", stolen.lease_id, contested,
                           _run_payload(contested))
        assert second["duplicate"] and not second["accepted"]
        assert co.status()["duplicate_reports"] == 1
        assert co._accepted[contested] == 1
        co.journal.close()


class TestReportValidation:
    def test_unknown_cell_raises(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        with pytest.raises(ReproError, match="unknown cell"):
            co.report("w1", grant.lease_id, "nope:spmv/gcn3",
                      _run_payload("nope:spmv/gcn3"))
        co.journal.close()

    def test_malformed_payload_raises(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        key = _keys(grant)[0]
        with pytest.raises(ReproError, match="malformed run payload"):
            co.report("w1", grant.lease_id, key, {"workload": "spmv"})
        co.journal.close()


class TestEdges:
    def test_invalid_points_complete_without_workers(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock,
                          axes=(Axis("l1i.size_bytes", (8192, 100)),))
        # only the valid point's cell is distributable.
        grant = co.lease("w1")
        keys = _keys(grant)
        assert len(keys) == 1
        co.report("w1", grant.lease_id, keys[0], _run_payload(keys[0]))
        results = co.finish()
        assert len(results.points) == 2
        assert sum(1 for pr in results.points
                   if pr.point.error is not None) == 1

    def test_abort_fails_outstanding_cells(self, tmp_path, clock):
        co = _coordinator(tmp_path, clock)
        grant = co.lease("w1")
        keys = _keys(grant)
        co.report("w1", grant.lease_id, keys[0], _run_payload(keys[0]))
        co.abort("sweep timed out")
        assert co.done
        results = co.finish()
        failed = [run for pr in results.points
                  for run in pr.runs.values() if run.error]
        assert len(failed) == 1
        assert "timed out" in failed[0].error
