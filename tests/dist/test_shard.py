"""Shard planning: content-addressed ids, trace-fingerprint grouping,
size caps, and wire round-trips."""

import pytest

from repro.common.config import small_config
from repro.core.requests import (
    LeaseGrant,
    RequestError,
    ShardCell,
    ShardRequest,
    SweepRequest,
)
from repro.dist import ShardState, plan_shards, shard_id_for
from repro.explore.space import Axis

SCALE = 0.1


def _request(**kw):
    spec = dict(axes=(Axis("cu.vrf_banks", (2, 4)),), workloads=("spmv",),
                isas=("gcn3",), scale=SCALE, seed=7, config=small_config(2),
                use_disk_cache=False, verify_replay=False)
    spec.update(kw)
    return SweepRequest(**spec)


def _cells(n=2):
    return tuple(ShardCell(point=f"p{i:02d}", workload="spmv", isa="gcn3")
                 for i in range(n))


class TestShardId:
    def test_deterministic(self):
        cells = _cells()
        assert (shard_id_for("abc", "fp1", cells)
                == shard_id_for("abc", "fp1", cells))

    def test_every_component_matters(self):
        cells = _cells()
        base = shard_id_for("abc", "fp1", cells)
        assert base != shard_id_for("abd", "fp1", cells)
        assert base != shard_id_for("abc", "fp2", cells)
        assert base != shard_id_for("abc", "fp1", cells[:1])

    def test_shape(self):
        shard_id = shard_id_for("abc", "fp1", _cells())
        assert len(shard_id) == 12
        int(shard_id, 16)


class TestPlanShards:
    def test_timing_axis_groups_into_one_shard(self):
        # cu.vrf_banks never changes the dynamic instruction stream, so
        # both points share one trace fingerprint -> one shard.
        plan = plan_shards(_request())
        assert len(plan.shards) == 1
        assert plan.cell_count == 2
        shard = plan.shards[0]
        assert shard.trace_fp
        assert len({cell.point for cell in shard.cells}) == 2

    def test_workloads_get_their_own_shards(self):
        plan = plan_shards(_request(workloads=("spmv", "bitonic")))
        assert len(plan.shards) == 2
        assert len({shard.trace_fp for shard in plan.shards}) == 2
        for shard in plan.shards:
            assert len({cell.workload for cell in shard.cells}) == 1

    def test_functional_axis_splits_shards(self):
        # simd_width changes the dynamic stream -> one shard per point.
        plan = plan_shards(_request(axes=(Axis("cu.simd_width", (8, 16)),)))
        assert len(plan.shards) == 2
        assert len({shard.trace_fp for shard in plan.shards}) == 2

    def test_max_shard_cells_chunks_within_a_fingerprint(self):
        plan = plan_shards(_request(), max_shard_cells=1)
        assert len(plan.shards) == 2
        assert len({shard.shard_id for shard in plan.shards}) == 2
        # chunks still share the fingerprint: the second replays the
        # first chunk's capture via the store.
        assert len({shard.trace_fp for shard in plan.shards}) == 1

    def test_capture_chunks_lease_before_replay_chunks(self):
        # Two fingerprints, three cells each, chunked to one cell per
        # shard: the queue must open with both capture-bearing chunks
        # (each group's first) before any replay-only chunk, preserving
        # relative group order within each half.
        plan = plan_shards(
            _request(workloads=("spmv", "bitonic"),
                     axes=(Axis("cu.vrf_banks", (2, 4, 8)),)),
            max_shard_cells=1)
        assert len(plan.shards) == 6
        fps = [s.trace_fp for s in plan.shards]
        assert fps[:2] == sorted(set(fps), key=fps.index)  # one per group
        assert len(set(fps[:2])) == 2
        # the replay tail keeps each group's chunks in planning order
        assert fps[2:] == [fps[0], fps[0], fps[1], fps[1]]

    def test_same_spec_plans_identically(self):
        a = plan_shards(_request())
        b = plan_shards(_request())
        assert [s.shard_id for s in a.shards] == [s.shard_id
                                                 for s in b.shards]
        assert a.sweep_id == b.sweep_id

    def test_invalid_points_are_excluded(self):
        plan = plan_shards(_request(
            axes=(Axis("l1i.size_bytes", (8192, 100)),)))
        # the 100-byte point is invalid; only the valid point shards.
        assert plan.cell_count == 1
        assert sum(1 for p in plan.points if p.error is not None) == 1


class TestShardState:
    def test_granted_request_subtracts_completed_cells(self):
        plan = plan_shards(_request())
        state = ShardState.from_request(plan.shards[0])
        full = state.granted_request()
        assert full is state.request
        done_key = next(iter(state.remaining))
        state.remaining.pop(done_key)
        granted = state.granted_request()
        assert len(granted.cells) == 1
        assert all(cell.key != done_key for cell in granted.cells)
        # identity is preserved: it is the same shard, minus done work.
        assert granted.shard_id == state.request.shard_id

    def test_cell_config_rebuilds_point_config(self):
        plan = plan_shards(_request())
        shard = plan.shards[0]
        for cell, point in zip(shard.cells, (p for p in plan.points
                                             if p.valid)):
            assert shard.cell_config(cell).fingerprint() == \
                point.config.fingerprint()


class TestWireRoundTrips:
    def test_shard_cell_round_trip(self):
        cell = ShardCell(point="p00", workload="spmv", isa="gcn3",
                         overrides=(("cu.vrf_banks", 4),
                                    ("l1d.hit_latency", 8)))
        again = ShardCell.from_payload(cell.to_payload())
        assert again == cell
        assert again.overrides == cell.overrides   # order preserved

    def test_shard_request_round_trip(self):
        shard = plan_shards(_request()).shards[0]
        again = ShardRequest.from_payload(shard.to_payload())
        assert again.shard_id == shard.shard_id
        assert again.cells == shard.cells
        assert again.config.fingerprint() == shard.config.fingerprint()

    def test_lease_grant_round_trip(self):
        shard = plan_shards(_request()).shards[0]
        grant = LeaseGrant(state="granted", lease_id="L00001", ttl=30.0,
                           shard=shard, trace_available=True, stolen=True)
        again = LeaseGrant.from_payload(grant.to_payload())
        assert again.state == "granted"
        assert again.lease_id == "L00001"
        assert again.trace_available and again.stolen
        assert again.shard is not None
        assert again.shard.shard_id == shard.shard_id

    def test_granted_lease_needs_a_shard(self):
        with pytest.raises(RequestError, match="needs a shard"):
            LeaseGrant(state="granted")

    def test_unknown_lease_state_rejected(self):
        with pytest.raises(RequestError, match="lease state"):
            LeaseGrant(state="maybe")
