"""Exporter tests: Chrome trace_event round-trip, JSONL, text report."""

import io
import json

import pytest

from repro.common.config import small_config
from repro.common.stats import StatSet
from repro.core import Session
from repro.obs import (
    TraceBus,
    TraceConfig,
    chrome_trace_dict,
    parse_chrome_trace,
    read_jsonl,
    text_report,
    write_chrome_trace,
    write_jsonl,
)


def _small_trace():
    bus = TraceBus(TraceConfig())
    bus.emit("issue", "v_add_f32", ts=10, dur=4, cu=0, wf=0,
             args={"pc": 2, "cat": "valu"})
    bus.emit("cache", "l1d1", ts=12, cu=1, args={"line": 77, "op": "miss"})
    bus.emit("dispatch", "kernel", ts=0, dur=100,
             args={"dispatch": 0, "workgroups": 4})   # device scope: cu=-1
    bus.stall("simd_busy", ts=11, cu=0, wf=3)
    return bus.data()


@pytest.fixture(scope="module")
def traced_run():
    return Session(small_config(2)).run(
        "arraybw", "gcn3", scale=0.1, trace=TraceConfig())


class TestChromeExport:
    def test_document_shape(self):
        doc = chrome_trace_dict(_small_trace(), metadata={"workload": "x"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["workload"] == "x"
        assert doc["otherData"]["stall_cycles"] == {"simd_busy": 1}

    def test_durations_become_complete_events(self):
        doc = chrome_trace_dict(_small_trace())
        issue = next(e for e in doc["traceEvents"] if e.get("name") == "v_add_f32")
        assert issue["ph"] == "X" and issue["dur"] == 4

    def test_point_events_become_instants(self):
        doc = chrome_trace_dict(_small_trace())
        cache = next(e for e in doc["traceEvents"] if e.get("name") == "l1d1")
        assert cache["ph"] == "i"

    def test_device_scope_maps_to_pid_zero(self):
        doc = chrome_trace_dict(_small_trace())
        dispatch = next(e for e in doc["traceEvents"] if e.get("name") == "kernel")
        assert dispatch["pid"] == 0
        # cu 0 / wavefront 0 must be distinguishable from "no cu/wf".
        issue = next(e for e in doc["traceEvents"] if e.get("name") == "v_add_f32")
        assert issue["pid"] == 1 and issue["tid"] == 1

    def test_process_name_metadata_present(self):
        doc = chrome_trace_dict(_small_trace())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M"}
        assert names == {"gpu", "cu0", "cu1"}

    def test_round_trip_preserves_every_event(self):
        trace = _small_trace()
        buf = io.StringIO()
        write_chrome_trace(trace, buf)
        again = parse_chrome_trace(buf.getvalue())
        assert again.events == trace.events
        assert again.stall_cycles == trace.stall_cycles
        assert again.sample_every == trace.sample_every
        assert tuple(again.categories) == trace.categories

    def test_round_trip_on_real_run(self, traced_run, tmp_path):
        trace = traced_run.trace
        path = str(tmp_path / "run.trace.json")
        write_chrome_trace(trace, path)
        with open(path) as f:
            doc = json.load(f)   # must be valid JSON on disk
        again = parse_chrome_trace(doc)
        assert len(again.events) == len(trace.events)
        assert again.counts() == trace.counts()
        assert again.events == trace.events

    def test_rejects_non_trace_documents(self):
        with pytest.raises(ValueError, match="Chrome trace_event"):
            parse_chrome_trace({"foo": 1})


class TestJsonl:
    def test_round_trip(self, tmp_path):
        trace = _small_trace()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(trace, path)
        with open(path) as f:
            lines = f.readlines()
        assert len(lines) == len(trace.events)
        again = read_jsonl(lines)
        assert again.events == trace.events

    def test_lines_are_independent_json(self):
        buf = io.StringIO()
        write_jsonl(_small_trace(), buf)
        for line in buf.getvalue().splitlines():
            record = json.loads(line)
            assert {"ts", "dur", "cat", "name", "cu", "wf", "args"} <= set(record)


class TestTextReport:
    def test_report_sections(self, traced_run):
        report = text_report(traced_run.trace, stats=traced_run.total,
                             title="arraybw/gcn3")
        assert "== arraybw/gcn3 ==" in report
        assert "by category:" in report
        assert "stall reasons" in report
        assert "occupancy (resident workgroups):" in report
        assert "cycles:" in report and "IPC:" in report
        assert "L1I" in report   # cache hit-rate table

    def test_report_without_stats_still_renders(self):
        report = text_report(_small_trace())
        assert "simd_busy" in report
        assert "cycles:" not in report

    def test_stall_percentages_sum_sensibly(self, traced_run):
        total = sum(traced_run.trace.stall_cycles.values())
        report = text_report(traced_run.trace)
        assert f"({total} blocked wavefront-scans)" in report

    def test_empty_trace_reports_zero_events(self):
        report = text_report(TraceBus(TraceConfig()).data(),
                             stats=StatSet(), title="empty")
        assert "events: 0 recorded" in report
