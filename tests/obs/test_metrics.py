"""Metric registry tests: declarations, lookup, suggestions, and the
every-counter-is-declared invariant over a real run."""

import pytest

from repro.common.config import small_config
from repro.common.stats import StatSet
from repro.core import Session
from repro.obs import METRICS, MetricKind, MetricRegistry, MetricScope
from repro.obs.metrics import CYCLES, IB_FLUSHES


class TestRegistry:
    def test_exact_lookup(self):
        metric = METRICS.find("cycles")
        assert metric is not None
        assert metric.kind is MetricKind.COUNTER
        assert metric.unit == "cycles"

    def test_family_lookup_matches_instances(self):
        for name in ("l1d0_hits", "l1d17_misses", "l1i3_hits", "sc0_misses",
                     "l2_1_hits"):
            assert METRICS.find(name) is not None, name

    def test_family_requires_full_match(self):
        assert METRICS.find("l1d_hits") is None       # no instance number
        assert METRICS.find("xl1d0_hits") is None     # prefix garbage
        assert METRICS.find("l1d0_hits_extra") is None

    def test_unknown_name(self):
        assert METRICS.find("no_such_metric") is None
        assert not METRICS.known("no_such_metric")

    def test_suggest_close_matches(self):
        assert "ib_flushes" in METRICS.suggest("ib_flushs")
        assert "cycles" in METRICS.suggest("cycels")
        assert METRICS.suggest("qqqqqq") == []

    def test_duplicate_declaration_rejected(self):
        registry = MetricRegistry()
        registry.counter("x", "events", MetricScope.GPU, "an x")
        with pytest.raises(ValueError, match="declared twice"):
            registry.counter("x", "events", MetricScope.GPU, "another x")

    def test_iteration_and_len_cover_everything(self):
        metrics = list(METRICS)
        assert len(metrics) == len(METRICS)
        assert all(m.description for m in metrics)
        assert all(m.unit for m in metrics)

    def test_instruction_category_counters_declared(self):
        assert METRICS.find("instr_valu") is not None
        assert METRICS.find("instr_vmem") is not None


class TestBumpByMetric:
    def test_bump_accepts_metric_objects(self):
        stats = StatSet()
        stats.bump(CYCLES, 10)
        stats.bump(IB_FLUSHES)
        assert stats["cycles"] == 10
        assert stats["ib_flushes"] == 1

    def test_bump_still_accepts_strings(self):
        stats = StatSet()
        stats.bump("l1d0_hits", 3)
        assert stats["l1d0_hits"] == 3


class TestEveryEmittedCounterIsDeclared:
    """The registry must know every counter a real run produces —
    otherwise stat() lookups on real output could raise."""

    @pytest.mark.parametrize("isa", ["hsail", "gcn3"])
    def test_real_run_counters_all_known(self, isa):
        run = Session(small_config(2)).run("spmv", isa, scale=0.1)
        unknown = [name for name in run.total.snapshot()
                   if METRICS.find(name) is None]
        assert unknown == []
