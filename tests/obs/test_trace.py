"""Trace bus unit tests plus cross-checks against a real simulated run."""

import pytest

from repro.common.config import small_config
from repro.core import Session
from repro.obs import CATEGORIES, TraceBus, TraceConfig, TraceData, TraceEvent


class TestTraceConfig:
    def test_defaults_cover_every_category(self):
        assert TraceConfig().categories == tuple(sorted(CATEGORIES))

    def test_categories_deduped_and_sorted(self):
        config = TraceConfig(categories=("stall", "issue", "stall"))
        assert config.categories == ("issue", "stall")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace category"):
            TraceConfig(categories=("issue", "bogus"))

    def test_bad_sampling_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(sample_every=0)
        with pytest.raises(ValueError):
            TraceConfig(max_events=0)

    @pytest.mark.parametrize("spec", [None, "", "all"])
    def test_parse_all(self, spec):
        assert TraceConfig.parse(spec).categories == tuple(sorted(CATEGORIES))

    def test_parse_list_with_whitespace(self):
        config = TraceConfig.parse(" cache , issue ", sample_every=4)
        assert config.categories == ("cache", "issue")
        assert config.sample_every == 4

    def test_hashable_for_job_transport(self):
        a = TraceConfig.parse("issue,cache")
        b = TraceConfig.parse("cache,issue")
        assert a == b and hash(a) == hash(b)


class TestTraceBus:
    def test_wants_flags_follow_mask(self):
        bus = TraceBus(TraceConfig(categories=("issue", "stall")))
        assert bus.wants_issue and bus.wants_stall
        assert not (bus.wants_cache or bus.wants_mem or bus.wants_vrf or
                    bus.wants_flush or bus.wants_wait or bus.wants_dispatch or
                    bus.wants_fetch)

    def test_sampling_keeps_every_nth_per_category(self):
        bus = TraceBus(TraceConfig(sample_every=3))
        for i in range(10):
            bus.emit("issue", "op", ts=i)
        # Kept: indices 0, 3, 6, 9.
        assert [e.ts for e in bus.events] == [0, 3, 6, 9]

    def test_sampling_counters_are_per_category(self):
        bus = TraceBus(TraceConfig(sample_every=2))
        bus.emit("issue", "op", ts=0)
        bus.emit("cache", "l1d0", ts=1)   # first of its own category: kept
        assert [e.cat for e in bus.events] == ["issue", "cache"]

    def test_cap_counts_dropped_events(self):
        bus = TraceBus(TraceConfig(max_events=5))
        for i in range(12):
            bus.emit("issue", "op", ts=i)
        assert len(bus.events) == 5
        assert bus.dropped == 7
        assert bus.data().dropped == 7

    def test_stall_accounting_exact_under_sampling(self):
        bus = TraceBus(TraceConfig(sample_every=100))
        for i in range(250):
            bus.stall("simd_busy", ts=i)
        # The event stream is thinned, the accounting is not.
        assert bus.stall_cycles == {"simd_busy": 250}
        assert len([e for e in bus.events if e.cat == "stall"]) == 3

    def test_data_is_a_snapshot(self):
        bus = TraceBus()
        bus.emit("issue", "op", ts=0)
        data = bus.data()
        bus.emit("issue", "op", ts=1)
        assert len(data.events) == 1


class TestTraceData:
    def _data(self):
        bus = TraceBus()
        bus.emit("issue", "v_add", ts=5, dur=4, cu=1, wf=2, args={"pc": 3})
        bus.emit("cache", "l1d0", ts=6, cu=1, args={"line": 9, "op": "hit"})
        bus.stall("simd_busy", ts=7, cu=1)
        return bus.data()

    def test_payload_round_trip_is_lossless(self):
        data = self._data()
        again = TraceData.from_payload(data.to_payload())
        assert again.events == data.events
        assert again.stall_cycles == data.stall_cycles
        assert again.categories == data.categories
        assert again.sample_every == data.sample_every

    def test_payload_survives_json(self):
        import json

        data = self._data()
        again = TraceData.from_payload(json.loads(json.dumps(data.to_payload())))
        assert again.events == data.events

    def test_counts_and_by_category(self):
        data = self._data()
        assert data.counts() == {"issue": 1, "cache": 1, "stall": 1}
        assert data.by_category("cache")[0].name == "l1d0"

    def test_merge_folds_events_and_stalls(self):
        a, b = self._data(), self._data()
        a.merge(b)
        assert len(a.events) == 6
        assert a.stall_cycles == {"simd_busy": 2}

    def test_event_equality_treats_missing_args_as_empty(self):
        assert TraceEvent(1, 0, "issue", "op") == \
               TraceEvent(1, 0, "issue", "op", args={})


@pytest.fixture(scope="module")
def traced_run():
    """One real traced simulation shared by the cross-check tests."""
    return Session(small_config(2)).run(
        "bitonic", "gcn3", scale=0.1, trace=TraceConfig())


class TestTraceAgainstMetrics:
    """Unsampled event counts must agree with the metric counters."""

    def test_run_carries_trace_data(self, traced_run):
        assert traced_run.trace is not None
        assert traced_run.trace.sample_every == 1
        assert traced_run.trace.events

    def test_issue_events_match_dynamic_instructions(self, traced_run):
        issues = traced_run.trace.by_category("issue")
        assert len(issues) == traced_run.dynamic_instructions

    def test_flush_events_match_ib_flushes(self, traced_run):
        flushes = traced_run.trace.by_category("flush")
        assert len(flushes) == traced_run.stat("ib_flushes")

    def test_l1i_lookups_match_ifetch_requests(self, traced_run):
        l1i_lookups = [
            e for e in traced_run.trace.by_category("cache")
            if e.name.startswith("l1i") and e.args["op"] in ("hit", "miss")
        ]
        assert len(l1i_lookups) == traced_run.stat("ifetch_requests")

    def test_stall_accounting_only_uses_known_reasons(self, traced_run):
        known = {
            "simd_busy", "fetch_wait", "ib_resync", "scalar_busy",
            "branch_busy", "vmem_busy", "lds_busy", "unit_busy",
            "waitcnt_vm", "waitcnt_lgkm", "scoreboard", "scoreboard_mem",
            "vmem_capacity",
        }
        assert set(traced_run.trace.stall_cycles) <= known
        assert traced_run.trace.stall_cycles  # a real run always stalls

    def test_tracing_does_not_change_statistics(self, traced_run):
        untraced = Session(small_config(2)).run("bitonic", "gcn3", scale=0.1)
        assert untraced.total.snapshot() == traced_run.total.snapshot()

    def test_category_mask_limits_recorded_events(self):
        run = Session(small_config(2)).run(
            "bitonic", "gcn3", scale=0.1,
            trace=TraceConfig.parse("issue,stall"))
        assert set(run.trace.counts()) <= {"issue", "stall"}
        assert run.trace.by_category("issue")
