"""Tables 1-3: the paper's instruction-expansion listings, regenerated
from this repository's own finalizer output."""

import re

from conftest import one_shot
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def _table1_kernel():
    kb = KernelBuilder("tab1_workitemabsid", [("out", DType.U64)])
    tid = kb.wi_abs_id()
    kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4, tid)
    return Session().compile(kb.finish())


def _table2_kernel():
    kb = KernelBuilder("tab2_kernarg", [("arg1", DType.U64)])
    v = kb.load(Segment.GLOBAL, kb.kernarg("arg1"), DType.U32)
    kb.store(Segment.GLOBAL, kb.kernarg("arg1") + 64, v)
    return Session().compile(kb.finish())


def _table3_kernel():
    kb = KernelBuilder("tab3_fdiv", [("p", DType.U64)])
    a = kb.load(Segment.GLOBAL, kb.kernarg("p"), DType.F64)
    b = kb.load(Segment.GLOBAL, kb.kernarg("p") + 8, DType.F64)
    kb.store(Segment.GLOBAL, kb.kernarg("p") + 16, a / b)
    return Session().compile(kb.finish())


def test_tab123_listings(benchmark, show):
    duals = one_shot(
        benchmark,
        lambda: (_table1_kernel(), _table2_kernel(), _table3_kernel()),
    )
    titles = (
        "Table 1: instructions for obtaining the work-item id",
        "Table 2: instructions for kernarg address calculation",
        "Table 3: instructions for 64-bit floating point division",
    )
    expectations = (
        ["s_load_dword", "s_waitcnt", "s_bfe_u32", "s_mul_i32", "v_add_u32"],
        ["v_mov_b32", "v_mov_b32", "flat_load_dword"],
        ["v_div_scale_f64", "v_div_scale_f64", "v_rcp_f64", "v_fma_f64",
         "v_div_fmas_f64", "v_div_fixup_f64"],
    )
    for dual, title, expected in zip(duals, titles, expectations):
        print(f"\n{title}")
        print("=" * len(title))
        print("HSAIL:")
        for instr in dual.hsail.instrs:
            print(f"  {instr!r}")
        print("GCN3:")
        for instr in dual.gcn3.instrs:
            print(f"  {instr!r}")
        ops = [i.opcode for i in dual.gcn3.instrs]
        for op in expected:
            assert op in ops, (title, op)
        assert dual.expansion_ratio > 1.5, title
