"""Figure 8: static instruction footprint (HSAIL at the 8B/instr gem5
approximation vs the real GCN3 encoding)."""

from conftest import one_shot
from repro.harness.figures import figure08_instruction_footprint


def test_fig08_instruction_footprint(benchmark, suite, show):
    title, headers, rows = one_shot(
        benchmark, lambda: figure08_instruction_footprint(suite))
    show(title, headers, rows)
    geomean = rows[-1][3]
    # HSAIL underrepresents the footprint on average (paper: 2.4x; our
    # HSAIL is more compact than HLC's, so the gap is smaller).
    assert geomean > 1.1
