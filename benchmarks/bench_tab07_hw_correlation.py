"""Table 7: hardware correlation and mean absolute runtime error.

Hardware is a deterministic synthetic proxy (no GPU in this environment;
see DESIGN.md section 3); the claim preserved is that IL simulation adds
error on top of the machine-ISA model's error while correlation stays
high for both.
"""

from conftest import one_shot
from repro.harness.hardware_model import correlate, table07_rows


def test_tab07_hw_correlation(benchmark, suite, show):
    title, headers, rows = one_shot(benchmark, lambda: table07_rows(suite))
    show(title, headers, rows)
    report = correlate(suite)
    assert report.correlation["hsail"] > 0.9
    assert report.correlation["gcn3"] > 0.9
    assert report.mean_abs_error["hsail"] > report.mean_abs_error["gcn3"]
