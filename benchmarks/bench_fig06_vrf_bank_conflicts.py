"""Figure 6: VRF bank conflicts.

Paper claim: GCN3 sees ~1/3 the conflicts because scalar operands bypass
the VRF and the finalizer spaces dependent instructions.  Our model
reproduces the direction for the control-flow/streaming workloads; the
f64-division-heavy workloads (CoMD, LULESH) invert it because the
Newton-Raphson expansion's vector operand traffic dominates -- see
EXPERIMENTS.md for the analysis.
"""

from conftest import one_shot
from repro.harness.figures import figure06_vrf_bank_conflicts


def test_fig06_vrf_bank_conflicts(benchmark, suite, show):
    title, headers, rows = one_shot(
        benchmark, lambda: figure06_vrf_bank_conflicts(suite))
    show(title, headers, rows)
    ratios = {r[0]: r[3] for r in rows if r[0] != "GEOMEAN"}
    # Direction holds for the non-divide workloads.
    assert ratios["Array BW"] >= 1.0
    assert sum(1 for v in ratios.values() if v >= 0.9) >= 5
