"""Ablation: VRF bank count vs port conflicts.

Doubling the banks should cut conflicts for both ISAs; the HSAIL/GCN3
*relationship* is the paper's claim, the absolute sensitivity is the
model's.
"""

from dataclasses import replace

from conftest import one_shot
from repro.common.config import paper_config
from repro.harness.runner import run_workload


def test_ablation_vrf_banks(benchmark, show):
    def sweep():
        rows = []
        for banks in (2, 4, 8):
            config = paper_config()
            config = config.scaled(cu=replace(config.cu, vrf_banks=banks))
            row = [banks]
            for isa in ("hsail", "gcn3"):
                run = run_workload("arraybw", isa, scale=0.5, config=config)
                assert run.verified
                row.append(int(run.stat("vrf_bank_conflicts")))
            rows.append(row)
        return rows

    rows = one_shot(benchmark, sweep)
    show("Ablation: VRF banks vs conflicts (Array BW)",
         ["Banks", "HSAIL conflicts", "GCN3 conflicts"], rows)
    # More banks -> fewer conflicts, monotonically, for both ISAs.
    for col in (1, 2):
        values = [r[col] for r in rows]
        assert values[0] >= values[1] >= values[2]
