"""Figure 9: instruction buffer flushes (GCN3 needs far fewer)."""

from conftest import one_shot
from repro.harness.figures import figure09_ib_flushes


def test_fig09_ib_flushes(benchmark, suite, show):
    title, headers, rows = one_shot(benchmark, lambda: figure09_ib_flushes(suite))
    show(title, headers, rows)
    ratios = {r[0]: r[3] for r in rows if r[0] != "GEOMEAN"}
    assert all(v <= 1.05 for v in ratios.values() if v)
    # predicated workloads flush in neither ISA
    assert ratios["HPGMG"] == 0 or ratios["HPGMG"] <= 1.0
    # divergent workloads flush far less under GCN3
    assert ratios["CoMD"] < 0.6
