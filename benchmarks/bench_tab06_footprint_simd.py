"""Table 6: data footprint and SIMD utilization (the 'similar' stats)."""

from conftest import one_shot
from repro.harness.figures import table06_footprint_and_simd


def test_tab06_footprint_simd(benchmark, suite, show):
    title, headers, rows = one_shot(
        benchmark, lambda: table06_footprint_and_simd(suite))
    show(title, headers, rows)
    for row in rows:
        name, _h, _g, ratio, h_simd, g_simd = row
        if name in ("FFT", "LULESH"):
            assert ratio > 1.05, name      # per-launch segment inflation
        else:
            assert abs(ratio - 1.0) < 0.02, name
        assert abs(h_simd - g_simd) < 12.0, name
