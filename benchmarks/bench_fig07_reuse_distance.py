"""Figure 7: median vector-register reuse distance (GCN3 ~2x HSAIL)."""

from conftest import one_shot
from repro.harness.figures import figure07_reuse_distance


def test_fig07_reuse_distance(benchmark, suite, show):
    title, headers, rows = one_shot(
        benchmark, lambda: figure07_reuse_distance(suite))
    show(title, headers, rows)
    geomean = rows[-1][3]
    assert geomean > 1.5
    ratios = {r[0]: r[3] for r in rows if r[0] != "GEOMEAN"}
    assert all(v >= 1.0 for v in ratios.values())
