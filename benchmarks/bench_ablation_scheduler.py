"""Ablation: the finalizer's independent-instruction scheduling.

The paper attributes GCN3's doubled register reuse distance (Figure 7)
to "the finalizer's intelligent instruction scheduling".  This ablation
finalizes the same kernels with the scheduling pass disabled and shows
the reuse distance collapsing back toward HSAIL's while functional
results stay identical.
"""

import numpy as np

from conftest import BENCH_SCALE, one_shot
from repro.common.config import paper_config
from repro.common.tables import render_table
from repro.finalizer.finalize import FinalizeOptions
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu
from repro.workloads import create

WORKLOADS = ("md", "snap", "hpgmg")


def run_variant(name, options):
    wl = create(name, scale=min(BENCH_SCALE, 0.5))
    wl.finalize_options = options
    proc = GpuProcess("gcn3", memory_capacity=1 << 25)
    wl.stage(proc, "gcn3")
    stats_list = Gpu(paper_config(), proc).run_all()
    assert wl.verify(proc), (name, options)
    from repro.common.stats import merge_all

    total = merge_all(stats_list)
    return total


def test_ablation_independent_scheduling(benchmark, show):
    def run_all():
        rows = []
        for name in WORKLOADS:
            sched = run_variant(name, FinalizeOptions())
            no_sched = run_variant(
                name, FinalizeOptions(independent_scheduling=False))
            rows.append([
                name,
                sched.reuse_distance.median,
                no_sched.reuse_distance.median,
                sched.cycles,
                no_sched.cycles,
            ])
        return rows

    rows = one_shot(benchmark, run_all)
    show("Ablation: finalizer independent-instruction scheduling (GCN3)",
         ["Workload", "reuse median (sched)", "reuse median (no sched)",
          "cycles (sched)", "cycles (no sched)"],
         rows)
    # Scheduling must never shrink the reuse distance, and must stretch
    # it somewhere -- the Figure 7 mechanism.
    assert all(r[1] >= r[2] for r in rows)
    assert any(r[1] > r[2] for r in rows)
