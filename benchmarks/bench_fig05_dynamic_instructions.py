"""Figure 5: dynamic instruction count and breakdown (GCN3 vs HSAIL)."""

from conftest import one_shot
from repro.harness.figures import figure05_dynamic_instructions


def test_fig05_dynamic_instructions(benchmark, suite, show):
    title, headers, rows = one_shot(
        benchmark, lambda: figure05_dynamic_instructions(suite))
    show(title, headers, rows)
    ratios = {r[0]: r[3] for r in rows if r[0] != "GEOMEAN"}
    # GCN3 executes 1.5x-3x more instructions; FFT is the exception.
    assert all(v > 1.0 for v in ratios.values())
    assert 1.4 < rows[-1][3] < 3.0  # geomean
    assert ratios["FFT"] <= sorted(ratios.values())[1]
