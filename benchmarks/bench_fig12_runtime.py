"""Figure 12: runtime normalized (HSAIL error goes both ways).

Paper: Array BW runs 1.6x longer under HSAIL while LULESH runs 1.85x
longer under GCN3 -- the sign of the IL's runtime error is workload
dependent, so no fudge factor can correct it.
"""

from conftest import one_shot
from repro.harness.figures import figure12_runtime


def test_fig12_runtime(benchmark, suite, show):
    title, headers, rows = one_shot(benchmark, lambda: figure12_runtime(suite))
    show(title, headers, rows)
    ratios = {r[0]: r[3] for r in rows if r[0] != "GEOMEAN"}
    assert ratios["Array BW"] > 1.0     # HSAIL slower
    assert ratios["LULESH"] < 1.0       # GCN3 slower
    assert any(v > 1.05 for v in ratios.values())
    assert any(v < 0.95 for v in ratios.values())
