"""Ablation: L1I capacity vs the two ISAs' instruction footprints.

Recreates the paper's LULESH observation (Figure 8 discussion): once the
instruction cache is smaller than the machine-code footprint, GCN3 fetch
misses take off while the 8 B/instruction IL approximation still fits.
"""

from conftest import one_shot
from repro.common.config import CacheConfig, paper_config
from repro.harness.runner import run_workload


def test_ablation_l1i_capacity(benchmark, show):
    sizes = [8192, 2048, 1024]

    def sweep():
        rows = []
        for size in sizes:
            config = paper_config().scaled(
                l1i=CacheConfig(size_bytes=size, associativity=8,
                                hit_latency=4))
            row = [f"{size} B"]
            for isa in ("hsail", "gcn3"):
                run = run_workload("lulesh", isa, scale=0.5, config=config,
                                   seed=7)
                assert run.verified
                row += [int(run.stat("ifetch_misses")), run.cycles]
            rows.append(row)
        return rows

    rows = one_shot(benchmark, sweep)
    show("Ablation: L1I capacity sweep over LULESH",
         ["L1I", "HSAIL misses", "HSAIL cycles", "GCN3 misses", "GCN3 cycles"],
         rows)
    # At the smallest cache, the machine-ISA footprint thrashes harder.
    small = rows[-1]
    big = rows[0]
    gcn3_growth = small[3] / max(1, big[3])
    hsail_growth = small[1] / max(1, big[1])
    assert gcn3_growth > 1.2
    assert small[3] > small[1]  # GCN3 misses exceed HSAIL's when starved
