"""Figure 11: IPC normalized to HSAIL (GCN3 generally higher)."""

from conftest import one_shot
from repro.harness.figures import figure11_ipc


def test_fig11_ipc(benchmark, suite, show):
    title, headers, rows = one_shot(benchmark, lambda: figure11_ipc(suite))
    show(title, headers, rows)
    assert rows[-1][3] > 1.3  # geomean
