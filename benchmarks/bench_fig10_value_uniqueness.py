"""Figure 10: uniqueness of VRF lane values (read and write probes)."""

from conftest import one_shot
from repro.harness.figures import figure10_value_uniqueness


def test_fig10_value_uniqueness(benchmark, suite, show):
    title, headers, rows = one_shot(
        benchmark, lambda: figure10_value_uniqueness(suite))
    show(title, headers, rows)
    # The paper's point: the ISA alone changes observed uniqueness, in
    # BOTH directions across workloads.
    diffs = [r[2] - r[1] for r in rows]
    assert any(d > 1.0 for d in diffs)    # GCN3 more unique somewhere
    assert any(d < -1.0 for d in diffs)   # and less unique elsewhere
