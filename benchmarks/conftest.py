"""Benchmark fixtures.

The full (workload x ISA) simulation matrix runs once per pytest session
under the paper's Table 4 configuration and is shared by every benchmark;
each bench then regenerates its figure/table from the cached results and
prints the paper-shaped rows.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload problem-size scale (default 0.5; use
  1.0 for the EXPERIMENTS.md numbers, smaller for smoke runs).
* ``REPRO_BENCH_JOBS`` — worker processes for the matrix (default 1 =
  serial; 0 = one per core).
* ``REPRO_NO_CACHE`` — disable the on-disk result cache, forcing a full
  re-simulation (any non-empty value).
* ``REPRO_CACHE_DIR`` — where cached results live (default
  ``.repro_cache/``).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.common.config import paper_config
from repro.common.tables import render_table
from repro.core import Session

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def suite():
    """The full simulation matrix under the paper configuration.

    Cold runs simulate (in parallel when ``REPRO_BENCH_JOBS`` asks for
    it) and persist every cell in the result cache; warm reruns of the
    benchmark session only deserialize.
    """
    return Session(paper_config()).suite(
        scale=BENCH_SCALE,
        jobs=BENCH_JOBS,
        progress=lambda event: print(event.format(), file=sys.stderr),
    )


@pytest.fixture()
def show():
    """Print one figure's table under the benchmark output."""

    def _show(title, headers, rows):
        print()
        print(render_table(headers, rows, title))

    return _show


def one_shot(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
