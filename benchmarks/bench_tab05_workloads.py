"""Table 5: the evaluated workloads and their kernel inventory."""

from conftest import one_shot, BENCH_SCALE
from repro.workloads import all_workloads


def test_tab05_workloads(benchmark, show):
    workloads = one_shot(benchmark, lambda: all_workloads(scale=BENCH_SCALE))
    rows = []
    for wl in workloads:
        duals = wl.kernels()
        rows.append([
            wl.name,
            wl.description,
            len(duals),
            sum(d.hsail.static_instructions for d in duals.values()),
            sum(d.gcn3.static_instructions for d in duals.values()),
        ])
    show("Table 5: evaluated workloads",
         ["Workload", "Description", "Kernels", "HSAIL instrs", "GCN3 instrs"],
         rows)
    assert len(rows) == 10
