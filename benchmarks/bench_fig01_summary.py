"""Figure 1: geomean summary of dissimilar and similar statistics."""

from conftest import one_shot
from repro.harness.figures import figure01_summary


def test_fig01_summary(benchmark, suite, show):
    title, headers, rows = one_shot(benchmark, lambda: figure01_summary(suite))
    show(title, headers, rows)
    values = dict(zip((r[0] for r in rows), (r[1] for r in rows)))
    # Paper Figure 1 directions: dissimilar stats diverge, similar match.
    assert values["dynamic instructions (GCN3/HSAIL)"] > 1.4
    assert values["reuse distance (GCN3/HSAIL)"] > 1.5
    assert values["IB flushes (HSAIL/GCN3)"] > 1.2
    assert 0.9 < values["SIMD utilization (HSAIL/GCN3)"] < 1.1
    assert values["data footprint (HSAIL/GCN3)"] >= 1.0
