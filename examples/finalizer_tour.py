#!/usr/bin/env python
"""A guided tour of the finalizer: what gets lost at the IL level.

Regenerates the paper's Tables 1-3 from this repository's own compiler
pipeline, then walks through the other lowering decisions the evaluation
section measures: scalarization, VOP2 operand legalization, waitcnt
insertion, and private-segment address materialization.

Run:  python examples/finalizer_tour.py
"""

from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment


def show(title, dual, note=""):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    if note:
        print(note)
    print(f"\nHSAIL ({dual.hsail.static_instructions} instructions):")
    for instr in dual.hsail.instrs:
        print(f"    {instr!r}")
    print(f"\nGCN3 ({dual.gcn3.static_instructions} instructions, "
          f"{dual.expansion_ratio:.2f}x):")
    print(dual.gcn3.pretty())


def table1():
    kb = KernelBuilder("workitem_id", [("out", DType.U64)])
    tid = kb.wi_abs_id()
    kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4,
             tid)
    show(
        "Table 1 -- obtaining the absolute work-item id",
        Session().compile(kb.finish()),
        "HSAIL: one instruction.  GCN3: the ABI sequence -- s_load the\n"
        "packed workgroup sizes from the AQL packet (s[4:5] + 0x4), wait,\n"
        "s_bfe the 16-bit X size, s_mul by the workgroup id in s8, and\n"
        "v_add the in-workgroup id from v0.",
    )


def table2():
    kb = KernelBuilder("kernarg_access", [("arg1", DType.U64)])
    v = kb.load(Segment.GLOBAL, kb.kernarg("arg1"), DType.U32)
    kb.store(Segment.GLOBAL, kb.kernarg("arg1") + 64, v)
    show(
        "Table 2 -- kernarg address calculation",
        Session().compile(kb.finish()),
        "HSAIL ld_kernarg is serviced from simulator state.  GCN3 moves\n"
        "the kernarg base (s[6:7], set by the ABI) into VGPRs for the\n"
        "FLAT load -- the value redundancy HSAIL never sees.",
    )


def table3():
    kb = KernelBuilder("fp64_division", [("p", DType.U64)])
    a = kb.load(Segment.GLOBAL, kb.kernarg("p"), DType.F64)
    b = kb.load(Segment.GLOBAL, kb.kernarg("p") + 8, DType.F64)
    kb.store(Segment.GLOBAL, kb.kernarg("p") + 16, a / b)
    show(
        "Table 3 -- 64-bit floating point division",
        Session().compile(kb.finish()),
        "HSAIL: a single div.  GCN3: the Newton-Raphson sequence\n"
        "(v_div_scale x2, v_rcp, fma refinement, v_div_fmas,\n"
        "v_div_fixup) -- plus the register pressure of four live f64\n"
        "temporaries, which 'can only be simulated using the GCN3 code'.",
    )


def scalarization():
    kb = KernelBuilder("scalarization", [("p", DType.U64), ("n", DType.U32)])
    tid = kb.wi_abs_id()
    bound = (kb.kernarg("n") + 7) & 0xFFFFFFF8   # uniform integer math
    with kb.If(kb.lt(tid, bound)):               # divergent use
        kb.store(Segment.GLOBAL,
                 kb.kernarg("p") + kb.cvt(tid, DType.U64) * 4, tid)
    show(
        "Scalarization -- uniform work on the scalar pipeline",
        Session().compile(kb.finish()),
        "The bound computation is uniform across the wavefront: the\n"
        "finalizer assigns it to SGPRs and the scalar ALU (s_add/s_and),\n"
        "resources that simply do not exist at the HSAIL level.",
    )


def dependencies():
    kb = KernelBuilder("waitcnt", [("p", DType.U64), ("q", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    a = kb.load(Segment.GLOBAL, kb.kernarg("p") + off, DType.F32)
    b = kb.load(Segment.GLOBAL, kb.kernarg("q") + off, DType.F32)
    kb.store(Segment.GLOBAL, kb.kernarg("p") + off, a * b)
    show(
        "Dependency management -- s_waitcnt instead of a scoreboard",
        Session().compile(kb.finish()),
        "GCN3 has no hardware scoreboard: the finalizer inserts s_waitcnt\n"
        "before the first use of each outstanding load (note the vmcnt\n"
        "values allowing younger loads to stay in flight).  The HSAIL\n"
        "simulator must model a scoreboard that real hardware lacks.",
    )


def private_segment():
    kb = KernelBuilder("private_segment", [("out", DType.U64)])
    scratch = kb.private_scratch(8)
    tid = kb.wi_abs_id()
    kb.store(Segment.PRIVATE, scratch, tid * 3)
    v = kb.load(Segment.PRIVATE, scratch, DType.U32)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + kb.cvt(tid, DType.U64) * 4, v)
    show(
        "Private segment -- address materialization from the descriptor",
        Session().compile(kb.finish()),
        "HSAIL's ld_private/st_private imply a per-work-item base the\n"
        "simulator maintains.  GCN3 computes it: descriptor base (s[0:1])\n"
        "+ work-item id * stride (s2), then FLAT accesses -- the 'several\n"
        "offsets and stride sizes' of paper section III.A.2.",
    )


if __name__ == "__main__":
    table1()
    table2()
    table3()
    scalarization()
    dependencies()
    private_segment()
