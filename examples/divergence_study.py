#!/usr/bin/env python
"""The paper's Figure 3, reproduced end to end.

Builds the if-else-if kernel from Figure 3(a), shows the HSAIL CFG with
its reconvergence points and the GCN3 predicated layout, then executes
both with a wavefront whose lanes take all three paths and reports the
instruction-buffer flushes: the HSAIL reconvergence stack jumps, GCN3's
EXEC-mask layout does not.

Run:  python examples/divergence_study.py
"""

import numpy as np

from repro.common.config import small_config
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def build_figure3():
    """Figure 3(a):  if (cond1) *out = 84; else if (cond2) *out = 90;
    else *out = 84;  (one work-item per element)."""
    kb = KernelBuilder(
        "figure3", [("x", DType.U64), ("out", DType.U64),
                    ("t1", DType.U32), ("t2", DType.U32)],
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    x = kb.load(Segment.GLOBAL, kb.kernarg("x") + off, DType.U32)
    result = kb.var(DType.U32, 0)
    with kb.If(kb.lt(x, kb.kernarg("t1"))) as outer:
        kb.assign(result, 84)
        with outer.Else():
            with kb.If(kb.lt(x, kb.kernarg("t2"))) as inner:
                kb.assign(result, 90)
                with inner.Else():
                    kb.assign(result, 84)
    kb.store(Segment.GLOBAL, kb.kernarg("out") + off, result)
    return kb.finish()


def run(dual, isa, x_values):
    proc = GpuProcess(isa)
    x_d = proc.upload(x_values)
    out = proc.alloc_buffer(4 * len(x_values))
    proc.dispatch(dual.for_isa(isa), grid=len(x_values), wg=64,
                  kernargs=[x_d, out, 10, 20])
    gpu = Gpu(small_config(1), proc)
    stats = gpu.run_all()[0]
    return proc.download(out, np.uint32, len(x_values)), stats


def main() -> None:
    dual = Session().compile(build_figure3())

    print("HSAIL (Figure 3b): SIMT instructions; the simulator derives")
    print("reconvergence PCs from immediate post-dominators:")
    print(dual.hsail.pretty())
    print(f"  reconvergence table (branch pc -> RPC): {dual.hsail.rpc_table}")
    print()
    print("GCN3 (Figure 3c): serial layout, EXEC-mask predication, branch")
    print("instructions only to bypass fully inactive paths:")
    print(dual.gcn3.pretty())
    print()

    # One wavefront, all three paths populated (like the figure).
    x = np.zeros(64, dtype=np.uint32)
    x[0:20] = 5     # path A (x < t1)         -> 84
    x[20:44] = 15   # path B (t1 <= x < t2)   -> 90
    x[44:64] = 99   # path C (x >= t2)        -> 84
    expected = np.where(x < 10, 84, np.where(x < 20, 90, 84))

    print("executing with one fully divergent wavefront "
          "(20/24/20 lanes per path):")
    for isa in ("hsail", "gcn3"):
        out, stats = run(dual, isa, x)
        assert np.array_equal(out, expected.astype(np.uint32))
        print(f"  {isa.upper():5s}: IB flushes = "
              f"{int(stats.snapshot().get('ib_flushes', 0))}, "
              f"dynamic instructions = {stats.dynamic_instructions}, "
              f"cycles = {stats.cycles}")
    print()
    print("and with a uniform wavefront (every lane takes path A, so the")
    print("GCN3 bypass branches over the dead paths ARE taken):")
    for isa in ("hsail", "gcn3"):
        out, stats = run(dual, isa, np.full(64, 5, dtype=np.uint32))
        print(f"  {isa.upper():5s}: IB flushes = "
              f"{int(stats.snapshot().get('ib_flushes', 0))}")


if __name__ == "__main__":
    main()
