#!/usr/bin/env python
"""Per-kernel view of a multi-kernel workload (LULESH).

The paper stresses that IL-induced runtime error is kernel-dependent
("GCN3 error remains consistent across kernels, while HSAIL error
exhibits high variance").  LULESH, with ten distinct kernels launched
every timestep, is the natural place to look: this example prints the
per-kernel dynamic-instruction expansion and cycle ratios and shows how
much the IL's picture swings from one kernel to the next.

Run:  python examples/lulesh_per_kernel.py
"""

from repro.common.config import paper_config
from repro.common.tables import render_table
from repro.harness.runner import run_workload


def main() -> None:
    runs = {
        isa: run_workload("lulesh", isa, scale=0.5, config=paper_config())
        for isa in ("hsail", "gcn3")
    }
    assert all(r.verified for r in runs.values())

    hs = runs["hsail"].per_kernel_totals()
    g3 = runs["gcn3"].per_kernel_totals()
    rows = []
    for name in sorted(hs):
        short = name.replace("lulesh_", "")
        h, g = hs[name], g3[name]
        rows.append([
            short,
            h.dynamic_instructions,
            g.dynamic_instructions,
            round(g.dynamic_instructions / max(1, h.dynamic_instructions), 2),
            h.cycles,
            g.cycles,
            round(h.cycles / max(1, g.cycles), 2),
        ])
    print(render_table(
        ["Kernel", "HSAIL dyn", "GCN3 dyn", "expand",
         "HSAIL cyc", "GCN3 cyc", "HSAIL/GCN3 cyc"],
        rows,
        title="LULESH per-kernel statistics (all timesteps aggregated)",
    ))

    ratios = [r[6] for r in rows]
    spread = max(ratios) / min(ratios)
    print(f"\nper-kernel HSAIL/GCN3 runtime ratio spans "
          f"{min(ratios):.2f}x to {max(ratios):.2f}x ({spread:.1f}x spread):")
    print("a single IL fudge factor cannot be right for every kernel,")
    print("which is the paper's closing argument for machine-ISA simulation.")


if __name__ == "__main__":
    main()
