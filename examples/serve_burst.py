#!/usr/bin/env python
"""Warm daemon vs cold CLI: the ``repro serve`` batching win.

Ten run requests that share one functional fingerprint (same workload,
ISA, scale, seed — only timing config differs: ten L1D sizes) are
served two ways:

* **cold** — ten fresh ``python -m repro run`` processes, each paying
  interpreter start-up, kernel compilation, and full functional
  execution;
* **warm** — one resident ``repro serve`` daemon: the scheduler groups
  the burst by trace fingerprint, captures the functional trace once,
  and replays it through the timing model for the other nine.

The script asserts the daemon's statistics are bit-identical to
in-process execution, that exactly 1 capture + 9 replays happened, and
prints the wall-time ratio (EXPERIMENTS.md quotes a run of this).

Run:  python examples/serve_burst.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.common.config import small_config
from repro.core import Session
from repro.serve import DaemonClient

WORKLOAD, ISA, SCALE, SEED, CUS = "lulesh", "gcn3", 0.5, 7, 2
L1D_SIZES = [4096, 8192, 12288, 16384, 24576, 32768, 40960, 49152,
             65536, 131072]
SRC = str(Path(__file__).resolve().parents[1] / "src")


def request_for(size: int):
    config = small_config(CUS).with_overrides({"l1d.size_bytes": size})
    return Session(config).build_run_request(
        WORKLOAD, ISA, scale=SCALE, seed=SEED, execution="auto")


def cold_burst() -> float:
    env = dict(os.environ, PYTHONPATH=SRC)
    start = time.monotonic()
    for size in L1D_SIZES:
        subprocess.run(
            [sys.executable, "-m", "repro", "run", "-w", WORKLOAD,
             "-i", ISA, "-s", str(SCALE), "--cus", str(CUS),
             "--seed", str(SEED), "-O", f"l1d.size_bytes={size}"],
            check=True, env=env, stdout=subprocess.DEVNULL)
    return time.monotonic() - start


def warm_burst(tmp: str):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--quiet",
         "--trace-dir", f"{tmp}/traces", "--cache-dir", f"{tmp}/cache"],
        stdout=subprocess.PIPE, env=env, text=True)
    port = None
    for line in daemon.stdout:
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port, "daemon never came up"
    client = DaemonClient("127.0.0.1", port, client_id="burst")
    try:
        start = time.monotonic()
        jobs = [client.submit(request_for(size)) for size in L1D_SIZES]
        statuses = [client.wait(job.job_id, timeout=600) for job in jobs]
        wall = time.monotonic() - start
        metrics = client.metrics()
        return wall, statuses, metrics
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=60)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        print(f"burst: {len(L1D_SIZES)} x {WORKLOAD}/{ISA} scale={SCALE} "
              f"(one functional group, {len(L1D_SIZES)} L1D sizes)")
        cold = cold_burst()
        print(f"cold CLI : {cold:6.2f}s  "
              f"({len(L1D_SIZES)} processes, {len(L1D_SIZES)} functional "
              f"executions)")
        warm, statuses, metrics = warm_burst(tmp)
        executions = [status.execution for status in statuses]
        print(f"warm serve: {warm:6.2f}s  ({metrics.captures} capture + "
              f"{metrics.replays} replays, max batch {metrics.max_batch})")
        print(f"speedup   : {cold / warm:6.2f}x")

        assert executions.count("capture") == 1, executions
        assert executions.count("replay") == len(L1D_SIZES) - 1, executions
        for status, size in zip(statuses, L1D_SIZES):
            assert status.state == "done", status.error
            direct = Session(
                small_config(CUS).with_overrides({"l1d.size_bytes": size})
            ).run(WORKLOAD, ISA, scale=SCALE, seed=SEED).to_payload()
            got = {k: v for k, v in status.result.items()
                   if k not in ("wall_seconds", "execution")}
            direct.pop("wall_seconds", None)
            assert got == direct, f"stats drifted at l1d={size}"
        print("verified  : daemon statistics bit-identical to in-process "
              "execution")
        return 0 if cold / warm >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
