#!/usr/bin/env python
"""Histogram with global atomics — an extension beyond the paper's suite.

The paper's ten workloads avoid atomics; this example exercises the
framework's atomic extension (`kb.atomic_add` -> HSAIL ``atomic_add`` ->
GCN3 ``flat_atomic_add``) and shows that even a contention-heavy kernel
keeps the dual-ISA contract: bit-identical memory results, different
microarchitectural picture.

Run:  python examples/histogram.py
"""

import numpy as np

from repro.common.config import paper_config
from repro.common.tables import render_table
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu

BINS = 16
N = 4096


def build_histogram():
    kb = KernelBuilder("histogram", [("x", DType.U64), ("counts", DType.U64)])
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    value = kb.load(Segment.GLOBAL, kb.kernarg("x") + off, DType.U32)
    bin_idx = value & (BINS - 1)
    slot = kb.kernarg("counts") + kb.cvt(bin_idx, DType.U64) * 4
    kb.atomic_add(Segment.GLOBAL, slot, 1)
    return kb.finish()


def main() -> None:
    dual = Session().compile(build_histogram())
    print("GCN3 lowering of the atomic kernel:")
    print(dual.gcn3.pretty())
    print()

    rng = np.random.default_rng(3)
    # Skewed data: bin contention differs wildly across bins.
    data = (rng.zipf(1.3, N) % 2**16).astype(np.uint32)
    expected = np.bincount(data % BINS, minlength=BINS).astype(np.uint32)

    rows = []
    for isa in ("hsail", "gcn3"):
        proc = GpuProcess(isa)
        x = proc.upload(data)
        counts = proc.upload(np.zeros(BINS, dtype=np.uint32))
        proc.dispatch(dual.for_isa(isa), grid=N, wg=256,
                      kernargs=[x, counts])
        stats = Gpu(paper_config(), proc).run_all()[0]
        got = proc.download(counts, np.uint32, BINS)
        assert np.array_equal(got, expected), isa
        rows.append([isa.upper(), stats.cycles, stats.dynamic_instructions,
                     round(stats.ipc, 2)])

    print(render_table(["ISA", "cycles", "dyn instrs", "IPC"], rows,
                       title=f"{N} atomic increments into {BINS} bins"))
    print(f"\nhistogram verified against numpy under both ISAs: {expected.tolist()}")


if __name__ == "__main__":
    main()
