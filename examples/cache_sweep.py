#!/usr/bin/env python
"""Ablation: instruction-footprint sensitivity to the L1I size.

The paper's LULESH observation (§V.C): its GCN3 footprint exceeds the L1
instruction cache, multiplying fetch misses and runtime, while the HSAIL
approximation (8 bytes/instruction) stays resident.  At this repository's
scaled problem sizes both footprints fit the default 32 kB L1I, so this
example recreates the effect by sweeping the I-cache down until the GCN3
code thrashes first — the machine-ISA footprint crosses the capacity wall
at a cache size where the IL footprint still fits.

Run:  python examples/cache_sweep.py
"""

from repro.common.config import CacheConfig, paper_config
from repro.common.tables import render_table
from repro.harness.runner import run_workload


def sweep_l1i(workload: str, sizes_bytes):
    rows = []
    for size in sizes_bytes:
        config = paper_config().scaled(
            l1i=CacheConfig(size_bytes=size, associativity=8, hit_latency=4)
        )
        row = [f"{size // 1024} kB" if size >= 1024 else f"{size} B"]
        for isa in ("hsail", "gcn3"):
            run = run_workload(workload, isa, scale=0.5, config=config)
            assert run.verified
            row += [int(run.stat("ifetch_misses")), run.cycles]
        rows.append(row)
    return rows


def main() -> None:
    workload = "lulesh"
    fp = {}
    for isa in ("hsail", "gcn3"):
        run = run_workload(workload, isa, scale=0.5, config=paper_config())
        fp[isa] = run.instr_footprint_bytes
    print(f"{workload} instruction footprints: "
          f"HSAIL {fp['hsail']} B (8 B/instr approximation), "
          f"GCN3 {fp['gcn3']} B (real encoding)\n")

    sizes = [8192, 4096, 2048, 1024]
    rows = sweep_l1i(workload, sizes)
    print(render_table(
        ["L1I size", "HSAIL L1I misses", "HSAIL cycles",
         "GCN3 L1I misses", "GCN3 cycles"],
        rows,
        title=f"L1I capacity sweep over {workload} "
              "(per-cluster instruction cache)",
    ))
    print()
    print("Reading the table: as the I-cache shrinks past the GCN3 code")
    print("size, machine-ISA fetch misses take off while the compact IL")
    print("approximation still fits -- the capacity interaction an")
    print("IL-level model cannot see (paper Figure 8 / LULESH).")


if __name__ == "__main__":
    main()
