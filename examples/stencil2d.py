#!/usr/bin/env python
"""2-D dispatch: a 5-point stencil over a 2-D grid of work-items.

Exercises the multi-dimensional ABI: under GCN3 the kernel's preamble
extracts both halves of the AQL packet's packed workgroup-size dword
(X via ``s_bfe 0x100000``, Y via ``s_bfe 0x100010``), multiplies by the
workgroup ids in s8/s9 and adds the per-lane local ids in v0/v1 —
Table 1's sequence, twice.

Run:  python examples/stencil2d.py
"""

import numpy as np

from repro.common.config import paper_config
from repro.common.tables import render_table
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu

W, H = 128, 64


def build_stencil():
    kb = KernelBuilder(
        "stencil5", [("src", DType.U64), ("dst", DType.U64),
                     ("w", DType.U32), ("h", DType.U32)],
    )
    x = kb.wi_abs_id(0)
    y = kb.wi_abs_id(1)
    w, h = kb.kernarg("w"), kb.kernarg("h")
    src = kb.kernarg("src")

    def at(xi, yi):
        flat = kb.mad(yi, w, 0) + xi
        return kb.load(Segment.GLOBAL, src + kb.cvt(flat, DType.U64) * 4,
                       DType.F32)

    # Clamped neighbours, fully predicated (no divergent branches).
    xm = kb.cmov(kb.eq(x, 0), x, x - 1)
    xp = kb.cmov(kb.eq(x + 1, w), x, x + 1)
    ym = kb.cmov(kb.eq(y, 0), y, y - 1)
    yp = kb.cmov(kb.eq(y + 1, h), y, y + 1)
    center = at(x, y)
    total = at(xm, y) + at(xp, y) + at(x, ym) + at(x, yp)
    result = kb.fma(center, kb.const(DType.F32, 4.0), -total) \
        * kb.const(DType.F32, 0.25)
    flat = kb.mad(y, w, 0) + x
    kb.store(Segment.GLOBAL, kb.kernarg("dst") + kb.cvt(flat, DType.U64) * 4,
             result)
    return kb.finish()


def reference(grid: np.ndarray) -> np.ndarray:
    padded = np.pad(grid, 1, mode="edge")
    total = (padded[1:-1, :-2] + padded[1:-1, 2:]
             + padded[:-2, 1:-1] + padded[2:, 1:-1]).astype(np.float32)
    return ((grid * np.float32(4.0) + (-total)) * np.float32(0.25)).astype(np.float32)


def main() -> None:
    dual = Session().compile(build_stencil())
    print(f"kernel uses a {dual.gcn3.abi_dims}-D ABI: "
          f"v0/v1 hold local X/Y, s8/s9 the workgroup ids")
    print(f"expansion {dual.expansion_ratio:.2f}x "
          f"({dual.hsail.static_instructions} HSAIL -> "
          f"{dual.gcn3.static_instructions} GCN3 instructions)\n")

    rng = np.random.default_rng(4)
    grid = rng.standard_normal((H, W)).astype(np.float32)
    expected = reference(grid)

    rows = []
    for isa in ("hsail", "gcn3"):
        proc = GpuProcess(isa)
        src = proc.upload(grid.reshape(-1))
        dst = proc.alloc_buffer(4 * W * H)
        proc.dispatch(dual.for_isa(isa), grid=(W, H, 1), wg=(16, 16, 1),
                      kernargs=[src, dst, W, H])
        stats = Gpu(paper_config(), proc).run_all()[0]
        got = proc.download(dst, np.float32, W * H).reshape(H, W)
        assert np.allclose(got, expected, rtol=1e-4, atol=1e-5), isa
        rows.append([isa.upper(), stats.cycles, stats.dynamic_instructions,
                     round(100 * stats.simd_utilization.value, 1)])

    print(render_table(["ISA", "cycles", "dyn instrs", "SIMD util %"], rows,
                       title=f"{W}x{H} Laplacian stencil, 16x16 workgroups"))
    print("\nverified against the numpy stencil under both ISAs")


if __name__ == "__main__":
    main()
