#!/usr/bin/env python
"""Quickstart: write one kernel, run it under both instruction sets.

This walks the full pipeline the paper studies:

1. author a kernel in the Python DSL (the "HCC" stand-in),
2. compile it to HSAIL (the IL) and finalize it to GCN3 (the machine ISA),
3. run the *same* kernel under both ISAs on the *same* cycle-level GPU
   model, and
4. compare what the two abstraction levels report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.common.config import paper_config
from repro.common.tables import render_table
from repro.core import Session
from repro.kernels.dsl import KernelBuilder
from repro.kernels.types import DType
from repro.runtime.memory import Segment
from repro.runtime.process import GpuProcess
from repro.timing.gpu import Gpu


def build_saxpy():
    """y[i] = a * x[i] + y[i] -- with a divergent guard for spice."""
    kb = KernelBuilder(
        "saxpy",
        [("x", DType.U64), ("y", DType.U64), ("a", DType.F32),
         ("n", DType.U32)],
    )
    tid = kb.wi_abs_id()
    off = kb.cvt(tid, DType.U64) * 4
    with kb.If(kb.lt(tid, kb.kernarg("n"))):
        x = kb.load(Segment.GLOBAL, kb.kernarg("x") + off, DType.F32)
        y_addr = kb.kernarg("y") + off
        y = kb.load(Segment.GLOBAL, y_addr, DType.F32)
        kb.store(Segment.GLOBAL, y_addr, kb.fma(kb.kernarg("a"), x, y))
    return kb.finish()


def main() -> None:
    # -- compile once, get both ISAs ------------------------------------
    dual = Session().compile(build_saxpy())
    print(f"kernel {dual.name}:")
    print(f"  HSAIL: {dual.hsail.static_instructions} instructions, "
          f"{dual.hsail.code_bytes} bytes (8 B/instr approximation)")
    print(f"  GCN3:  {dual.gcn3.static_instructions} instructions, "
          f"{dual.gcn3.code_bytes} bytes, {dual.gcn3.vgprs_used} VGPRs, "
          f"{dual.gcn3.sgprs_used} SGPRs")
    print(f"  static expansion: {dual.expansion_ratio:.2f}x")
    print()
    print("GCN3 disassembly:")
    print(dual.gcn3.pretty())
    print()

    # -- run under both ISAs --------------------------------------------
    n = 2048
    rng = np.random.default_rng(1)
    x = rng.random(n, dtype=np.float32)
    y = rng.random(n, dtype=np.float32)
    a = np.float32(1.5)
    expected = a * x + y

    rows = []
    for isa in ("hsail", "gcn3"):
        proc = GpuProcess(isa)
        x_d, y_d = proc.upload(x), proc.upload(y)
        proc.dispatch(dual.for_isa(isa), grid=n, wg=256,
                      kernargs=[x_d, y_d, float(a), n])
        gpu = Gpu(paper_config(), proc)
        stats = gpu.run_all()[0]
        result = proc.download(y_d, np.float32, n)
        assert np.allclose(result, expected, rtol=1e-5), isa
        snap = stats.snapshot()
        rows.append([
            isa.upper(),
            stats.cycles,
            stats.dynamic_instructions,
            round(stats.ipc, 3),
            int(snap.get("ib_flushes", 0)),
            int(snap.get("vrf_bank_conflicts", 0)),
            round(100 * snap["simd_utilization"], 1),
        ])

    print(render_table(
        ["ISA", "cycles", "dyn instrs", "IPC", "IB flushes",
         "VRF conflicts", "SIMD util %"],
        rows,
        title="Same kernel, same GPU model, two instruction-set abstractions",
    ))
    print("\nresults verified against numpy on both ISAs")


if __name__ == "__main__":
    main()
